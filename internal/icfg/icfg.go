// Package icfg builds the interprocedural control-flow graph used by the
// thread-interference analyses and the baseline data-flow analysis.
//
// Following the paper (Section 3.1), each call site is split into a call
// node and a return node, with three kinds of edges: intra-procedural edges,
// call edges (call node → callee entry) and return edges (callee exit →
// return node). Fork sites additionally carry fork-call/fork-return edges to
// their spawn routine; these are excluded from each thread's own ICFG (a
// fork has no outgoing interprocedural edge within its thread) but form the
// sequentialized view Pseq used by memory-SSA construction, in which a fork
// behaves like a call to every routine it may spawn (paper Section 3.2,
// Step 1).
package icfg

import (
	"fmt"

	"repro/internal/callgraph"
	"repro/internal/ir"
)

// EdgeKind classifies ICFG edges.
type EdgeKind uint8

const (
	// EIntra is an intraprocedural control-flow edge.
	EIntra EdgeKind = iota
	// ECall is an interprocedural call edge (call node → callee entry).
	ECall
	// ERet is an interprocedural return edge (callee exit → return node).
	ERet
	// EForkCall is a fork-site edge to the spawn routine's entry; part of
	// Pseq but not of the spawning thread's own ICFG.
	EForkCall
	// EForkRet is the matching routine-exit → fork-return edge in Pseq.
	EForkRet
)

func (k EdgeKind) String() string {
	switch k {
	case EIntra:
		return "intra"
	case ECall:
		return "call"
	case ERet:
		return "ret"
	case EForkCall:
		return "fork-call"
	case EForkRet:
		return "fork-ret"
	}
	return fmt.Sprintf("EdgeKind(%d)", uint8(k))
}

// NodeKind classifies ICFG nodes.
type NodeKind uint8

const (
	// NStmt is an ordinary statement node (also serves as the call node of
	// Call/Fork statements).
	NStmt NodeKind = iota
	// NRet is the synthetic return node of a Call/Fork statement.
	NRet
	// NEntry is a function entry node.
	NEntry
	// NExit is a function exit node.
	NExit
)

// Node is an ICFG node.
type Node struct {
	ID   int
	Kind NodeKind
	Func *ir.Function
	// Stmt is the underlying statement for NStmt and NRet nodes; nil for
	// entries and exits.
	Stmt ir.Stmt

	Out []Edge
	In  []Edge
}

func (n *Node) String() string {
	switch n.Kind {
	case NEntry:
		return "entry(" + n.Func.Name + ")"
	case NExit:
		return "exit(" + n.Func.Name + ")"
	case NRet:
		return fmt.Sprintf("ret-of[%s]", n.Stmt)
	default:
		return fmt.Sprintf("[%s]", n.Stmt)
	}
}

// Edge is a directed ICFG edge. Site identifies the call/fork statement for
// interprocedural edges (nil for intra edges).
type Edge struct {
	To   *Node
	From *Node
	Kind EdgeKind
	Site ir.Stmt
}

// Graph is the whole-program ICFG.
type Graph struct {
	Prog  *ir.Program
	CG    *callgraph.Graph
	Nodes []*Node

	EntryOf map[*ir.Function]*Node
	ExitOf  map[*ir.Function]*Node
	// StmtNode maps each statement to its primary node; RetNode maps
	// Call/Fork statements to their return node.
	StmtNode map[ir.Stmt]*Node
	RetNode  map[ir.Stmt]*Node
}

// Build constructs the ICFG for every function reachable from main.
func Build(cg *callgraph.Graph) *Graph {
	g := &Graph{
		Prog:     cg.Prog,
		CG:       cg,
		EntryOf:  map[*ir.Function]*Node{},
		ExitOf:   map[*ir.Function]*Node{},
		StmtNode: map[ir.Stmt]*Node{},
		RetNode:  map[ir.Stmt]*Node{},
	}
	for _, f := range cg.Prog.Funcs {
		g.buildFunc(f)
	}
	g.linkInterproc()
	return g
}

func (g *Graph) newNode(kind NodeKind, f *ir.Function, s ir.Stmt) *Node {
	n := &Node{ID: len(g.Nodes), Kind: kind, Func: f, Stmt: s}
	g.Nodes = append(g.Nodes, n)
	return n
}

func (g *Graph) addEdge(from, to *Node, kind EdgeKind, site ir.Stmt) {
	e := Edge{From: from, To: to, Kind: kind, Site: site}
	from.Out = append(from.Out, e)
	to.In = append(to.In, e)
}

// buildFunc creates nodes and intra edges for one function.
func (g *Graph) buildFunc(f *ir.Function) {
	entry := g.newNode(NEntry, f, nil)
	exit := g.newNode(NExit, f, nil)
	g.EntryOf[f] = entry
	g.ExitOf[f] = exit

	// first/last ICFG node per block (nil for empty blocks, resolved by
	// pass-through linking below).
	first := map[*ir.Block]*Node{}
	last := map[*ir.Block]*Node{}

	for _, b := range f.Blocks {
		var prev *Node
		for _, s := range b.Stmts {
			n := g.newNode(NStmt, f, s)
			g.StmtNode[s] = n
			head := n
			var tail *Node = n
			switch s.(type) {
			case *ir.Call, *ir.Fork:
				rn := g.newNode(NRet, f, s)
				g.RetNode[s] = rn
				tail = rn
				// Fork sites always fall through (the spawner continues
				// immediately); call sites fall through only when no callee
				// is known (external call), otherwise control flows through
				// the callee via ECall/ERet.
				if _, isFork := s.(*ir.Fork); isFork || len(g.CG.CalleesOf[s]) == 0 {
					g.addEdge(n, rn, EIntra, nil)
				}
			case *ir.Ret:
				g.addEdge(n, exit, EIntra, nil)
			}
			if prev != nil {
				g.addEdge(prev, head, EIntra, nil)
			}
			if first[b] == nil {
				first[b] = head
			}
			prev = tail
			last[b] = tail
		}
	}

	// Resolve empty blocks by path-compressing to the first real node of a
	// successor chain.
	var firstReal func(b *ir.Block, seen map[*ir.Block]bool) []*Node
	firstReal = func(b *ir.Block, seen map[*ir.Block]bool) []*Node {
		if seen[b] {
			return nil
		}
		seen[b] = true
		if n := first[b]; n != nil {
			return []*Node{n}
		}
		var out []*Node
		for _, s := range b.Succs {
			out = append(out, firstReal(s, seen)...)
		}
		return out
	}

	// Entry edge.
	if len(f.Blocks) > 0 {
		for _, n := range firstReal(f.Entry, map[*ir.Block]bool{}) {
			g.addEdge(entry, n, EIntra, nil)
		}
		if first[f.Entry] == nil && blockFallsOffProgram(f.Entry) {
			g.addEdge(entry, exit, EIntra, nil)
		}
	} else {
		g.addEdge(entry, exit, EIntra, nil)
	}

	// Block-to-block edges.
	for _, b := range f.Blocks {
		ln := last[b]
		if ln == nil {
			continue // empty block: handled transitively by firstReal
		}
		if _, isRet := lastStmtOf(b).(*ir.Ret); isRet {
			continue // already wired to exit
		}
		if len(b.Succs) == 0 {
			// Fall-off without Ret (builder normally prevents this).
			g.addEdge(ln, exit, EIntra, nil)
			continue
		}
		for _, sb := range b.Succs {
			for _, n := range firstReal(sb, map[*ir.Block]bool{}) {
				g.addEdge(ln, n, EIntra, nil)
			}
		}
	}
}

func lastStmtOf(b *ir.Block) ir.Stmt {
	if len(b.Stmts) == 0 {
		return nil
	}
	return b.Stmts[len(b.Stmts)-1]
}

// blockFallsOffProgram reports whether an empty entry chain reaches no real
// node (degenerate empty function bodies).
func blockFallsOffProgram(b *ir.Block) bool {
	return len(b.Stmts) == 0 && len(b.Succs) == 0
}

// linkInterproc adds call/ret and fork-call/fork-ret edges.
func (g *Graph) linkInterproc() {
	for s, callees := range g.CG.CalleesOf {
		cn := g.StmtNode[s]
		rn := g.RetNode[s]
		if cn == nil || rn == nil {
			continue
		}
		_, isFork := s.(*ir.Fork)
		for _, callee := range callees {
			entry := g.EntryOf[callee]
			exit := g.ExitOf[callee]
			if entry == nil {
				continue
			}
			if isFork {
				g.addEdge(cn, entry, EForkCall, s)
				g.addEdge(exit, rn, EForkRet, s)
			} else {
				g.addEdge(cn, entry, ECall, s)
				g.addEdge(exit, rn, ERet, s)
			}
		}
	}
}

// FirstStmtNode returns the first statement node of f's body following
// entry, or the exit node for empty functions. This is Entry(S_t) in the
// paper's thread model.
func (g *Graph) FirstStmtNode(f *ir.Function) *Node {
	entry := g.EntryOf[f]
	if entry == nil {
		return nil
	}
	for _, e := range entry.Out {
		if e.Kind == EIntra {
			return e.To
		}
	}
	return g.ExitOf[f]
}

// Stats returns node and edge counts.
func (g *Graph) Stats() (nodes, edges int) {
	nodes = len(g.Nodes)
	for _, n := range g.Nodes {
		edges += len(n.Out)
	}
	return
}

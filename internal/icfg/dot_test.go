package icfg_test

import (
	"strings"
	"testing"
)

func TestWriteDot(t *testing.T) {
	g := build(t, `
void w(void *a) { }
int main() {
	thread_t t;
	t = spawn(w, NULL);
	join(t);
	return 0;
}
`)
	var sb strings.Builder
	if err := g.WriteDot(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "cluster_main") || !strings.Contains(out, "cluster_w") {
		t.Error("function clusters missing")
	}
	if !strings.Contains(out, "color=red") {
		t.Error("fork edges should render red")
	}
}

package exitcode

import (
	"testing"

	fsam "repro"
)

// TestPinnedCodes freezes the historically-assigned codes: adding rungs to
// the ladder must never renumber them.
func TestPinnedCodes(t *testing.T) {
	cases := []struct {
		tier fsam.Precision
		want int
	}{
		{fsam.PrecisionSparseFS, OK},
		{fsam.PrecisionThreadObliviousFS, 3},
		{fsam.PrecisionAndersenOnly, 4},
		{fsam.PrecisionCFGFreeFS, 5},
		{fsam.PrecisionNone, Failure},
	}
	for _, c := range cases {
		if got := ForPrecision(c.tier); got != c.want {
			t.Errorf("ForPrecision(%v) = %d, want %d", c.tier, got, c.want)
		}
	}
}

// TestRegistryAssignedCodes: tiers added after the pinned era draw from 6
// upward in descending-tier order — tmod, the first such rung, gets 6.
func TestRegistryAssignedCodes(t *testing.T) {
	if got := ForPrecision(fsam.PrecisionThreadModularFS); got != 6 {
		t.Errorf("ForPrecision(thread-modular-fs) = %d, want 6", got)
	}
	seen := map[int]fsam.Precision{}
	for _, tier := range fsam.LadderTiers() {
		c := ForPrecision(tier)
		if prev, dup := seen[c]; dup {
			t.Errorf("code %d assigned to both %v and %v", c, prev, tier)
		}
		seen[c] = tier
	}
}

func TestIsDegraded(t *testing.T) {
	for _, c := range []int{OK, Failure, Usage} {
		if IsDegraded(c) {
			t.Errorf("IsDegraded(%d) = true, want false", c)
		}
	}
	for _, c := range []int{DegradedThreadOblivious, DegradedAndersen, DegradedCFGFree,
		ForPrecision(fsam.PrecisionThreadModularFS)} {
		if !IsDegraded(c) {
			t.Errorf("IsDegraded(%d) = false, want true", c)
		}
	}
}

// TestWorstOrdering: Failure > Usage > Andersen > CFGFree > tmod >
// ThreadOblivious > OK, and Worst is symmetric.
func TestWorstOrdering(t *testing.T) {
	tmodCode := ForPrecision(fsam.PrecisionThreadModularFS)
	order := []int{Failure, Usage, DegradedAndersen, DegradedCFGFree,
		tmodCode, DegradedThreadOblivious, OK}
	for i, hi := range order {
		for _, lo := range order[i:] {
			if got := Worst(hi, lo); got != hi {
				t.Errorf("Worst(%d, %d) = %d, want %d", hi, lo, got, hi)
			}
			if got := Worst(lo, hi); got != hi {
				t.Errorf("Worst(%d, %d) = %d, want %d", lo, hi, got, hi)
			}
		}
	}
}

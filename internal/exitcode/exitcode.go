// Package exitcode fixes the process exit-code convention shared by the
// cmd/ tools, so scripts driving them can distinguish "worked at full
// precision" from "worked, but the degradation ladder kicked in" from
// "failed outright" without parsing output.
//
// Degradation codes are registry-driven: the solver ladder's top tier is
// OK, the three historical rungs keep their pinned codes (3/4/5 — scripts
// depend on them), and every rung registered since is assigned the next
// free code from 6 upward in descending-tier order. Inserting a new rung
// therefore never renumbers an existing one.
package exitcode

import fsam "repro"

const (
	// OK: the analysis completed at full precision (or the command does
	// not run an analysis and simply succeeded).
	OK = 0
	// Failure: hard failure — I/O error, source that does not compile, a
	// deadline that expired before the pre-analysis completed, or a
	// validation violation.
	Failure = 1
	// Usage: bad flags or arguments.
	Usage = 2
	// FindingsReported: fsamcheck ran cleanly and reported at least one
	// diagnostic. It deliberately shares the numeric slot with Failure —
	// both must gate CI, and the convention (clean=0, findings=1, usage=2)
	// matches grep and the mainstream linters; fsamcheck's stderr
	// distinguishes the two for humans.
	FindingsReported = 1
	// DegradedThreadOblivious: the run completed, but the degradation
	// ladder fell back to the thread-oblivious flow-sensitive tier.
	DegradedThreadOblivious = 3
	// DegradedAndersen: the run completed, but only the flow-insensitive
	// Andersen pre-analysis is available.
	DegradedAndersen = 4
	// DegradedCFGFree: the run completed, but the degradation ladder fell
	// back to the CFG-free flow-sensitive tier.
	DegradedCFGFree = 5
)

// pinned holds the codes assigned before numbering became registry-driven.
// They are frozen: scripts in the wild match on them.
var pinned = map[fsam.Precision]int{
	fsam.PrecisionThreadObliviousFS: DegradedThreadOblivious,
	fsam.PrecisionAndersenOnly:      DegradedAndersen,
	fsam.PrecisionCFGFreeFS:         DegradedCFGFree,
}

// codes maps every on-ladder tier to its exit code, built once from the
// solver registry at init.
var codes = buildCodes()

func buildCodes() map[fsam.Precision]int {
	m := map[fsam.Precision]int{}
	tiers := fsam.LadderTiers()
	if len(tiers) == 0 {
		return m
	}
	m[tiers[0]] = OK
	next := 6
	for _, tier := range tiers[1:] {
		if c, ok := pinned[tier]; ok {
			m[tier] = c
			continue
		}
		m[tier] = next
		next++
	}
	return m
}

// ForPrecision maps a result tier onto the exit-code convention.
// PrecisionNone maps to Failure: the ladder only reports it alongside an
// error, which callers should have handled already.
func ForPrecision(p fsam.Precision) int {
	if c, ok := codes[p]; ok {
		return c
	}
	return Failure
}

// ForAnalysis maps a completed Analysis onto the convention relative to
// what was asked for: a run that completed at its requested engine's tier
// is OK — selecting `-engine andersen` and getting Andersen's result is
// success, not degradation — while a run the ladder moved below the
// requested tier reports that tier's degraded code.
func ForAnalysis(a *fsam.Analysis) int {
	if a.Stats.Degraded == "" {
		return OK
	}
	return ForPrecision(a.Precision)
}

// IsDegraded reports whether c is one of the degradation-rung codes: the
// run completed, but below the tier that was asked for.
func IsDegraded(c int) bool {
	if c == OK {
		return false
	}
	for _, code := range codes {
		if c == code {
			return true
		}
	}
	return false
}

// Worst returns the more severe of two codes under the convention:
// Failure and Usage dominate everything; among degradation codes the
// lower-precision tier wins (DegradedAndersen > DegradedCFGFree > tmod's
// rung > DegradedThreadOblivious > OK).
func Worst(a, b int) int {
	if rank(b) > rank(a) {
		return b
	}
	return a
}

// rank orders codes by severity. Degradation codes rank by ladder depth —
// the registry map already knows each code's tier, so a new rung slots in
// without touching this function.
func rank(c int) int {
	switch c {
	case Failure:
		return 1 << 20
	case Usage:
		return 1 << 19
	}
	for tier, code := range codes {
		if code == c && code != OK {
			// Lower tiers (smaller Precision values) are worse.
			return 1<<10 - int(tier)
		}
	}
	return -1
}

// Package exitcode fixes the process exit-code convention shared by the
// cmd/ tools, so scripts driving them can distinguish "worked at full
// precision" from "worked, but the degradation ladder kicked in" from
// "failed outright" without parsing output.
package exitcode

import fsam "repro"

const (
	// OK: the analysis completed at full precision (or the command does
	// not run an analysis and simply succeeded).
	OK = 0
	// Failure: hard failure — I/O error, source that does not compile, a
	// deadline that expired before the pre-analysis completed, or a
	// validation violation.
	Failure = 1
	// Usage: bad flags or arguments.
	Usage = 2
	// FindingsReported: fsamcheck ran cleanly and reported at least one
	// diagnostic. It deliberately shares the numeric slot with Failure —
	// both must gate CI, and the convention (clean=0, findings=1, usage=2)
	// matches grep and the mainstream linters; fsamcheck's stderr
	// distinguishes the two for humans.
	FindingsReported = 1
	// DegradedThreadOblivious: the run completed, but the degradation
	// ladder fell back to the thread-oblivious flow-sensitive tier.
	DegradedThreadOblivious = 3
	// DegradedAndersen: the run completed, but only the flow-insensitive
	// Andersen pre-analysis is available.
	DegradedAndersen = 4
	// DegradedCFGFree: the run completed, but the degradation ladder fell
	// back to the CFG-free flow-sensitive tier.
	DegradedCFGFree = 5
)

// ForPrecision maps a result tier onto the exit-code convention.
// PrecisionNone maps to Failure: the ladder only reports it alongside an
// error, which callers should have handled already.
func ForPrecision(p fsam.Precision) int {
	switch p {
	case fsam.PrecisionSparseFS:
		return OK
	case fsam.PrecisionThreadObliviousFS:
		return DegradedThreadOblivious
	case fsam.PrecisionCFGFreeFS:
		return DegradedCFGFree
	case fsam.PrecisionAndersenOnly:
		return DegradedAndersen
	}
	return Failure
}

// ForAnalysis maps a completed Analysis onto the convention relative to
// what was asked for: a run that completed at its requested engine's tier
// is OK — selecting `-engine andersen` and getting Andersen's result is
// success, not degradation — while a run the ladder moved below the
// requested tier reports that tier's degraded code.
func ForAnalysis(a *fsam.Analysis) int {
	if a.Stats.Degraded == "" {
		return OK
	}
	return ForPrecision(a.Precision)
}

// Worst returns the more severe of two codes under the convention:
// Failure and Usage dominate everything; otherwise the lower-precision
// degradation tier wins (DegradedAndersen > DegradedCFGFree >
// DegradedThreadOblivious > OK).
func Worst(a, b int) int {
	rank := func(c int) int {
		switch c {
		case Failure:
			return 4
		case Usage:
			return 3
		case DegradedAndersen:
			return 2
		case DegradedCFGFree:
			return 1
		case DegradedThreadOblivious:
			return 0
		}
		return -1
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

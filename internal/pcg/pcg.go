// Package pcg implements a procedure-level may-happen-in-parallel analysis
// in the spirit of PCG (Joisha et al., POPL'11), which the paper uses both
// as the parallel-region discovery for the NonSparse baseline and as the
// No-Interleaving ablation of FSAM (Section 4.3).
//
// Unlike the statement-level interleaving analysis, PCG only distinguishes
// whether two *procedures* may execute concurrently: two statements are MHP
// whenever their enclosing procedures are. Thread-level happens-before
// between siblings is honored (that much is procedure-level information),
// but join kills inside a procedure are not, so PCG reports strictly more
// MHP pairs than the interleaving analysis.
package pcg

import (
	"repro/internal/ir"
	"repro/internal/mhp"
	"repro/internal/threads"
)

// Result is the procedure-level MHP relation.
type Result struct {
	Model *threads.Model

	// parallel holds unordered procedure pairs that may run concurrently.
	parallel map[[2]*ir.Function]bool

	// execs lists the threads executing each function.
	execs map[*ir.Function][]*threads.Thread
}

// Analyze computes the procedure-level MHP relation.
func Analyze(model *threads.Model) *Result {
	r := &Result{
		Model:    model,
		parallel: map[[2]*ir.Function]bool{},
		execs:    map[*ir.Function][]*threads.Thread{},
	}
	seen := map[*ir.Function]map[*threads.Thread]bool{}
	for _, t := range model.Threads {
		for fc := range model.Funcs(t) {
			if seen[fc.Func] == nil {
				seen[fc.Func] = map[*threads.Thread]bool{}
			}
			if !seen[fc.Func][t] {
				seen[fc.Func][t] = true
				r.execs[fc.Func] = append(r.execs[fc.Func], t)
			}
		}
	}
	// Two procedures may run concurrently when some pair of their executing
	// threads may overlap.
	funcs := make([]*ir.Function, 0, len(r.execs))
	for f := range r.execs {
		funcs = append(funcs, f)
	}
	for i, f := range funcs {
		for j := i; j < len(funcs); j++ {
			g := funcs[j]
			if r.threadsOverlap(f, g) {
				r.parallel[pairKey(f, g)] = true
			}
		}
	}
	return r
}

func pairKey(a, b *ir.Function) [2]*ir.Function {
	if a.Name > b.Name {
		a, b = b, a
	}
	return [2]*ir.Function{a, b}
}

func (r *Result) threadsOverlap(f, g *ir.Function) bool {
	for _, t1 := range r.execs[f] {
		for _, t2 := range r.execs[g] {
			if r.Model.MayHappenInParallelThreads(t1, t2) {
				return true
			}
		}
	}
	return false
}

// MHPFuncs reports whether the two procedures may execute concurrently.
func (r *Result) MHPFuncs(f, g *ir.Function) bool {
	return r.parallel[pairKey(f, g)]
}

// MHPStmts implements mhp.StmtMHP at procedure granularity.
func (r *Result) MHPStmts(s1, s2 ir.Stmt) bool {
	f, g := ir.StmtFunc(s1), ir.StmtFunc(s2)
	if f == nil || g == nil {
		return false
	}
	return r.MHPFuncs(f, g)
}

// Bytes reports the footprint of the pair relation.
func (r *Result) Bytes() uint64 {
	return uint64(len(r.parallel)) * 24
}

var _ mhp.StmtMHP = (*Result)(nil)

package pcg_test

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/pcg"
	"repro/internal/pipeline"
)

func analyze(t *testing.T, src string) (*pipeline.Base, *pcg.Result) {
	t.Helper()
	b, err := pipeline.FromSource("t.mc", src)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return b, pcg.Analyze(b.Model)
}

func fn(t *testing.T, b *pipeline.Base, name string) *ir.Function {
	t.Helper()
	f := b.Prog.FuncByName[name]
	if f == nil {
		t.Fatalf("no function %s", name)
	}
	return f
}

func TestParallelProcedures(t *testing.T) {
	b, r := analyze(t, `
int x;
void worker(void *a) { x = 1; }
int main() {
	thread_t t;
	t = spawn(worker, NULL);
	x = 2;
	join(t);
	return 0;
}
`)
	main, worker := fn(t, b, "main"), fn(t, b, "worker")
	if !r.MHPFuncs(main, worker) {
		t.Error("main and worker must be parallel")
	}
	// A multi-instance check: worker vs itself is not parallel (single
	// thread instance).
	if r.MHPFuncs(worker, worker) {
		t.Error("single-instance worker is not self-parallel")
	}
}

func TestHBOrderedWorkersNotParallel(t *testing.T) {
	b, r := analyze(t, `
void wa(void *x) { }
void wb(void *x) { }
int main() {
	thread_t ta;
	ta = spawn(wa, NULL);
	join(ta);
	thread_t tb;
	tb = spawn(wb, NULL);
	join(tb);
	return 0;
}
`)
	wa, wb := fn(t, b, "wa"), fn(t, b, "wb")
	if r.MHPFuncs(wa, wb) {
		t.Error("happens-before-ordered workers are not parallel at procedure level")
	}
}

func TestLoopForkedSelfParallel(t *testing.T) {
	b, r := analyze(t, `
void w(void *a) { }
int main() {
	int i;
	for (i = 0; i < 4; i++) {
		thread_t t;
		t = spawn(w, NULL);
	}
	return 0;
}
`)
	w := fn(t, b, "w")
	if !r.MHPFuncs(w, w) {
		t.Error("multi-forked worker must be self-parallel")
	}
}

func TestCoarserThanStatementLevel(t *testing.T) {
	// PCG cannot distinguish code after the join within main, so main's
	// post-join statements remain "parallel" with the worker — the paper's
	// No-Interleaving imprecision.
	b, r := analyze(t, `
int x;
void worker(void *a) { x = 1; }
int main() {
	thread_t t;
	t = spawn(worker, NULL);
	join(t);
	x = 2;           // after the join, but same procedure
	return 0;
}
`)
	var workerStore, mainStore ir.Stmt
	for _, s := range b.Prog.Stmts {
		if st, ok := s.(*ir.Store); ok {
			if ir.StmtFunc(st).Name == "worker" {
				workerStore = st
			} else if ir.StmtFunc(st).Name == "main" {
				mainStore = st
			}
		}
	}
	if workerStore == nil || mainStore == nil {
		t.Fatal("stores not found")
	}
	if !r.MHPStmts(mainStore, workerStore) {
		t.Error("PCG is procedure-level: post-join statements stay parallel")
	}
	// The precise interleaving analysis disagrees (this is the Figure 12
	// No-Interleaving gap).
	il := b.Interleavings()
	if il.MHPStmts(mainStore, workerStore) {
		t.Error("precise analysis must order the post-join store")
	}
}

func TestBytes(t *testing.T) {
	_, r := analyze(t, `
void w(void *a) { }
int main() {
	thread_t t;
	t = spawn(w, NULL);
	join(t);
	return 0;
}
`)
	if r.Bytes() == 0 {
		t.Error("bytes")
	}
}

package dom_test

import (
	"math/rand"
	"testing"

	"repro/internal/dom"
	"repro/internal/ir"
)

// diamond builds the classic CFG: entry → {a, b} → merge.
func diamond() (*ir.Function, []*ir.Block) {
	p := ir.NewProgram()
	f := p.NewFunc("f")
	entry := f.NewBlock("entry")
	a := f.NewBlock("a")
	b := f.NewBlock("b")
	merge := f.NewBlock("merge")
	entry.AddEdge(a)
	entry.AddEdge(b)
	a.AddEdge(merge)
	b.AddEdge(merge)
	return f, []*ir.Block{entry, a, b, merge}
}

func TestDiamondDominators(t *testing.T) {
	f, blocks := diamond()
	d := dom.Compute(f)
	entry, a, b, merge := blocks[0], blocks[1], blocks[2], blocks[3]
	if d.Idom(a) != entry || d.Idom(b) != entry || d.Idom(merge) != entry {
		t.Errorf("idoms: a=%v b=%v merge=%v", d.Idom(a), d.Idom(b), d.Idom(merge))
	}
	// Frontier of a and b is the merge block.
	if len(d.Frontier(a)) != 1 || d.Frontier(a)[0] != merge {
		t.Errorf("frontier(a) = %v", d.Frontier(a))
	}
	if len(d.Frontier(entry)) != 0 {
		t.Errorf("frontier(entry) = %v", d.Frontier(entry))
	}
}

func TestLoopDominators(t *testing.T) {
	p := ir.NewProgram()
	f := p.NewFunc("f")
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	entry.AddEdge(head)
	head.AddEdge(body)
	head.AddEdge(exit)
	body.AddEdge(head)
	d := dom.Compute(f)
	if d.Idom(head) != entry || d.Idom(body) != head || d.Idom(exit) != head {
		t.Error("loop idoms wrong")
	}
	// The loop head is in the frontier of the body (back edge) and itself.
	found := false
	for _, fb := range d.Frontier(body) {
		if fb == head {
			found = true
		}
	}
	if !found {
		t.Errorf("frontier(body) = %v, want head", d.Frontier(body))
	}
}

func TestIteratedFrontier(t *testing.T) {
	f, blocks := diamond()
	d := dom.Compute(f)
	idf := d.IteratedFrontier([]*ir.Block{blocks[1]})
	if len(idf) != 1 || idf[0] != blocks[3] {
		t.Errorf("IDF = %v", idf)
	}
}

func TestUnreachableBlock(t *testing.T) {
	p := ir.NewProgram()
	f := p.NewFunc("f")
	entry := f.NewBlock("entry")
	island := f.NewBlock("island")
	_ = entry
	d := dom.Compute(f)
	if d.Reachable(island) {
		t.Error("island must be unreachable")
	}
	if d.Idom(island) != nil {
		t.Error("unreachable block has no idom")
	}
}

// naiveDominates computes dominance by brute force: b dominates v iff
// removing b makes v unreachable from entry.
func naiveDominates(f *ir.Function, b, v *ir.Block) bool {
	if b == v {
		return true
	}
	seen := map[*ir.Block]bool{b: true}
	var stack []*ir.Block
	if f.Entry != b {
		stack = append(stack, f.Entry)
		seen[f.Entry] = true
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == v {
			return false
		}
		for _, s := range cur.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return true
}

// TestRandomCFGsAgainstNaive property-checks idom against the brute-force
// dominance relation on random CFGs.
func TestRandomCFGsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		p := ir.NewProgram()
		f := p.NewFunc("f")
		n := 3 + rng.Intn(10)
		blocks := make([]*ir.Block, n)
		for i := range blocks {
			blocks[i] = f.NewBlock("")
		}
		// Random edges with guaranteed forward chain for reachability.
		for i := 0; i < n-1; i++ {
			blocks[i].AddEdge(blocks[i+1])
		}
		extra := rng.Intn(2 * n)
		for i := 0; i < extra; i++ {
			from := blocks[rng.Intn(n)]
			to := blocks[rng.Intn(n)]
			from.AddEdge(to)
		}
		d := dom.Compute(f)
		for _, v := range blocks {
			if v == f.Entry {
				continue
			}
			idom := d.Idom(v)
			if idom == nil {
				t.Fatalf("trial %d: reachable block without idom", trial)
			}
			// The immediate dominator must dominate v...
			if !naiveDominates(f, idom, v) {
				t.Fatalf("trial %d: idom(%v)=%v does not dominate", trial, v.Index, idom.Index)
			}
			// ...and every proper dominator of v must dominate idom(v).
			for _, w := range blocks {
				if w == v || w == idom {
					continue
				}
				if naiveDominates(f, w, v) && !naiveDominates(f, w, idom) {
					t.Fatalf("trial %d: %v dominates %v but not idom %v",
						trial, w.Index, v.Index, idom.Index)
				}
			}
		}
	}
}

// TestFrontierProperty checks the dominance-frontier definition on random
// CFGs: y ∈ DF(x) iff x dominates a predecessor of y but not y strictly.
func TestFrontierProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		p := ir.NewProgram()
		f := p.NewFunc("f")
		n := 3 + rng.Intn(8)
		blocks := make([]*ir.Block, n)
		for i := range blocks {
			blocks[i] = f.NewBlock("")
		}
		for i := 0; i < n-1; i++ {
			blocks[i].AddEdge(blocks[i+1])
		}
		for i := 0; i < rng.Intn(2*n); i++ {
			blocks[rng.Intn(n)].AddEdge(blocks[rng.Intn(n)])
		}
		d := dom.Compute(f)
		inFrontier := func(x, y *ir.Block) bool {
			for _, fb := range d.Frontier(x) {
				if fb == y {
					return true
				}
			}
			return false
		}
		for _, x := range blocks {
			for _, y := range blocks {
				want := false
				for _, pred := range y.Preds {
					if d.Reachable(pred) && naiveDominates(f, x, pred) &&
						(x == y || !naiveDominates(f, x, y)) {
						want = true
					}
				}
				if got := inFrontier(x, y); got != want && d.Reachable(x) {
					t.Fatalf("trial %d: DF(%d) contains %d = %v, want %v",
						trial, x.Index, y.Index, got, want)
				}
			}
		}
	}
}

// Package dom computes dominator trees and dominance frontiers of IR
// function CFGs using the Cooper-Harvey-Kennedy iterative algorithm. It is
// shared by the mem2reg SSA construction and the memory-SSA phase of the
// def-use graph builder.
package dom

import "repro/internal/ir"

// Info holds the dominator tree of one function.
type Info struct {
	// Blocks in reverse postorder.
	Blocks   []*ir.Block
	rpoIndex map[*ir.Block]int
	idom     map[*ir.Block]*ir.Block
	children map[*ir.Block][]*ir.Block
	frontier map[*ir.Block][]*ir.Block
}

// Compute builds dominator tree and dominance frontiers for f.
func Compute(f *ir.Function) *Info {
	d := &Info{
		rpoIndex: map[*ir.Block]int{},
		idom:     map[*ir.Block]*ir.Block{},
		children: map[*ir.Block][]*ir.Block{},
		frontier: map[*ir.Block][]*ir.Block{},
	}
	if f.Entry == nil {
		return d
	}
	// Postorder DFS from entry (iterative to handle deep CFGs).
	seen := map[*ir.Block]bool{f.Entry: true}
	type frame struct {
		b *ir.Block
		i int
	}
	stack := []frame{{b: f.Entry}}
	var post []*ir.Block
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.i < len(fr.b.Succs) {
			s := fr.b.Succs[fr.i]
			fr.i++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		post = append(post, fr.b)
		stack = stack[:len(stack)-1]
	}
	for i := len(post) - 1; i >= 0; i-- {
		d.rpoIndex[post[i]] = len(d.Blocks)
		d.Blocks = append(d.Blocks, post[i])
	}

	intersect := func(b1, b2 *ir.Block) *ir.Block {
		for b1 != b2 {
			for d.rpoIndex[b1] > d.rpoIndex[b2] {
				b1 = d.idom[b1]
			}
			for d.rpoIndex[b2] > d.rpoIndex[b1] {
				b2 = d.idom[b2]
			}
		}
		return b1
	}

	d.idom[f.Entry] = f.Entry
	for changed := true; changed; {
		changed = false
		for _, blk := range d.Blocks {
			if blk == f.Entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range blk.Preds {
				if d.idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.idom[blk] != newIdom {
				d.idom[blk] = newIdom
				changed = true
			}
		}
	}
	for _, blk := range d.Blocks {
		if blk != f.Entry {
			p := d.idom[blk]
			d.children[p] = append(d.children[p], blk)
		}
	}
	// Note: no join-node (≥2 preds) shortcut — a self-loop on a single-pred
	// block must still put the block in its own frontier.
	for _, blk := range d.Blocks {
		for _, p := range blk.Preds {
			if d.idom[p] == nil {
				continue
			}
			if p == blk {
				// Self-loop: a block is always in its own frontier (even
				// the entry, whose idom is itself).
				d.addFrontier(blk, blk)
				continue
			}
			runner := p
			for runner != d.idom[blk] {
				d.addFrontier(runner, blk)
				runner = d.idom[runner]
			}
			// A back edge into the entry: the sentinel idom(entry) == entry
			// stops the walk before adding the entry itself, but the entry
			// dominates p without strictly dominating itself, so it belongs
			// to its own frontier.
			if blk == d.idom[blk] {
				d.addFrontier(blk, blk)
			}
		}
	}
	return d
}

// addFrontier appends once (preds may repeat across edges).
func (d *Info) addFrontier(runner, blk *ir.Block) {
	for _, existing := range d.frontier[runner] {
		if existing == blk {
			return
		}
	}
	d.frontier[runner] = append(d.frontier[runner], blk)
}

// Idom returns the immediate dominator of b (entry maps to itself;
// unreachable blocks map to nil).
func (d *Info) Idom(b *ir.Block) *ir.Block { return d.idom[b] }

// Children returns the dominator-tree children of b.
func (d *Info) Children(b *ir.Block) []*ir.Block { return d.children[b] }

// Frontier returns the dominance frontier of b.
func (d *Info) Frontier(b *ir.Block) []*ir.Block { return d.frontier[b] }

// Reachable reports whether b was reachable from the entry.
func (d *Info) Reachable(b *ir.Block) bool {
	_, ok := d.rpoIndex[b]
	return ok
}

// IteratedFrontier returns the iterated dominance frontier of the given
// definition blocks (the phi-placement set).
func (d *Info) IteratedFrontier(defs []*ir.Block) []*ir.Block {
	inResult := map[*ir.Block]bool{}
	inWork := map[*ir.Block]bool{}
	var work []*ir.Block
	for _, b := range defs {
		if d.Reachable(b) && !inWork[b] {
			inWork[b] = true
			work = append(work, b)
		}
	}
	var out []*ir.Block
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, fb := range d.frontier[b] {
			if !inResult[fb] {
				inResult[fb] = true
				out = append(out, fb)
				if !inWork[fb] {
					inWork[fb] = true
					work = append(work, fb)
				}
			}
		}
	}
	return out
}

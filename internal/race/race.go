// Package race implements a static data-race detector as a client of FSAM,
// the paper's primary motivating application (Section 1: "data race
// detection ... built on pointer analysis"). A candidate race is a pair of
// memory accesses, at least one a store, that (1) may happen in parallel
// per the interleaving analysis, (2) may touch a common abstract object per
// the flow-sensitive points-to results, and (3) are not both protected by a
// common lock per the lock analysis.
package race

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/escape"
	"repro/internal/ir"
	"repro/internal/locks"
	"repro/internal/mhp"
	"repro/internal/pts"
	"repro/internal/threads"
)

// Report is one candidate data race.
type Report struct {
	Obj *ir.Object
	// First is always a store; Second is a load or store.
	First  ir.Stmt
	Second ir.Stmt
	// Threads names the thread pair of one witnessing instance.
	Threads [2]*threads.Thread
}

// String renders the report for human consumption.
func (r *Report) String() string {
	return fmt.Sprintf("race on %s: [%s] (line %d, %s) with [%s] (line %d, %s)",
		r.Obj, r.First, ir.LineOf(r.First), r.Threads[0],
		r.Second, ir.LineOf(r.Second), r.Threads[1])
}

// Detector bundles the analyses a detection run consumes.
type Detector struct {
	Model *threads.Model
	MHP   *mhp.Result
	Locks *locks.Result // may be nil: no lock-based suppression
	// Points is the flow-sensitive result used for alias refinement; when
	// nil the pre-analysis points-to sets are used instead.
	Points *core.Result
	// Escape is the thread-escape pruning oracle: pair enumeration skips
	// objects it proves non-Shared, since a race witness needs an MHP
	// instance pair and non-Shared objects have none. Nil disables the
	// skip; reported races are identical either way.
	Escape *escape.Result
}

// addrPts returns the refined points-to set of an access address.
func (d *Detector) addrPts(addr *ir.Var) *pts.Set {
	if d.Points != nil {
		if s := d.Points.PointsToVar(addr); !s.IsEmpty() {
			return s
		}
		// The sparse result can be empty for dead code; fall back.
	}
	return d.Model.Pre.PointsToVar(addr)
}

// protected reports whether both instances sit in spans of a common lock.
func (d *Detector) protected(i1, i2 locks.Inst) bool {
	if d.Locks == nil {
		return false
	}
	s1 := d.Locks.SpansOf(i1)
	if len(s1) == 0 {
		return false
	}
	s2 := d.Locks.SpansOf(i2)
	for _, a := range s1 {
		for _, b := range s2 {
			if a.LockObj == b.LockObj {
				return true
			}
		}
	}
	return false
}

// raceRelevant reports whether obj is shared state worth reporting: globals,
// heap objects, fields of either, and address-taken locals that escape to
// other threads. Thread handles and functions are excluded.
func raceRelevant(obj *ir.Object) bool {
	switch obj.Root().Kind {
	case ir.ObjGlobal, ir.ObjHeap, ir.ObjStack:
		return true
	}
	return false
}

// Detect enumerates candidate races, deterministically ordered.
func (d *Detector) Detect() []*Report {
	prog := d.Model.Prog
	var stores []*ir.Store
	var accesses []ir.Stmt
	for _, s := range prog.Stmts {
		switch s := s.(type) {
		case *ir.Store:
			stores = append(stores, s)
			accesses = append(accesses, s)
		case *ir.Load:
			accesses = append(accesses, s)
		}
	}

	seen := map[[3]uint64]bool{}
	var out []*Report
	for _, st := range stores {
		stPts := d.addrPts(st.Addr)
		if stPts.IsEmpty() {
			continue
		}
		for _, acc := range accesses {
			if acc == ir.Stmt(st) {
				continue
			}
			// Deduplicate unordered store/store pairs.
			if st2, ok := acc.(*ir.Store); ok && st2.ID() < st.ID() {
				continue
			}
			var accAddr *ir.Var
			switch a := acc.(type) {
			case *ir.Load:
				accAddr = a.Addr
			case *ir.Store:
				accAddr = a.Addr
			}
			common := stPts.Intersect(d.addrPts(accAddr))
			if common.IsEmpty() {
				continue
			}
			pairs := d.MHP.MHPInstances(st, acc)
			if len(pairs) == 0 {
				continue
			}
			// A pair is racy if SOME MHP instance pair is unprotected.
			var witness *[2]mhp.ThreadCtx
			for i := range pairs {
				i1 := locks.Inst{Thread: pairs[i][0].Thread, Ctx: pairs[i][0].Ctx, Stmt: st}
				i2 := locks.Inst{Thread: pairs[i][1].Thread, Ctx: pairs[i][1].Ctx, Stmt: acc}
				if !d.protected(i1, i2) {
					witness = &pairs[i]
					break
				}
			}
			if witness == nil {
				continue
			}
			common.ForEach(func(id uint32) {
				obj := prog.Objects[id]
				if !raceRelevant(obj) {
					return
				}
				if d.Escape != nil && !d.Escape.IsShared(obj.ID) {
					return
				}
				key := [3]uint64{uint64(st.ID()), uint64(acc.ID()), uint64(id)}
				if seen[key] {
					return
				}
				seen[key] = true
				out = append(out, &Report{
					Obj:     obj,
					First:   st,
					Second:  acc,
					Threads: [2]*threads.Thread{witness[0].Thread, witness[1].Thread},
				})
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].First.ID() != out[j].First.ID() {
			return out[i].First.ID() < out[j].First.ID()
		}
		if out[i].Second.ID() != out[j].Second.ID() {
			return out[i].Second.ID() < out[j].Second.ID()
		}
		return out[i].Obj.ID < out[j].Obj.ID
	})
	return out
}

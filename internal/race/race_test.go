package race_test

import (
	"strings"
	"testing"

	fsam "repro"
)

// detect runs FSAM + race detection over src.
func detect(t *testing.T, src string) []string {
	t.Helper()
	a, err := fsam.AnalyzeSource("race.mc", src, fsam.Config{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	reports, err := a.Races()
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, r := range reports {
		out = append(out, r.String())
	}
	return out
}

// hasRaceOn reports whether some report mentions the object name.
func hasRaceOn(reports []string, obj string) bool {
	for _, r := range reports {
		if strings.Contains(r, "race on "+obj+":") {
			return true
		}
	}
	return false
}

func TestUnprotectedSharedWriteIsRace(t *testing.T) {
	reports := detect(t, `
int counter;
int *cp;
void worker(void *arg) {
	*cp = 1;
}
int main() {
	cp = &counter;
	thread_t t;
	t = spawn(worker, NULL);
	*cp = 2;
	join(t);
	return 0;
}
`)
	if !hasRaceOn(reports, "counter") {
		t.Errorf("expected race on counter, got %v", reports)
	}
}

func TestLockProtectedIsNotRace(t *testing.T) {
	reports := detect(t, `
int counter;
int *cp;
lock_t m;
void worker(void *arg) {
	lock(&m);
	*cp = 1;
	unlock(&m);
}
int main() {
	cp = &counter;
	thread_t t;
	t = spawn(worker, NULL);
	lock(&m);
	*cp = 2;
	unlock(&m);
	join(t);
	return 0;
}
`)
	if hasRaceOn(reports, "counter") {
		t.Errorf("lock-protected accesses must not race: %v", reports)
	}
}

func TestDifferentLocksStillRace(t *testing.T) {
	reports := detect(t, `
int counter;
int *cp;
lock_t m1; lock_t m2;
void worker(void *arg) {
	lock(&m1);
	*cp = 1;
	unlock(&m1);
}
int main() {
	cp = &counter;
	thread_t t;
	t = spawn(worker, NULL);
	lock(&m2);
	*cp = 2;
	unlock(&m2);
	join(t);
	return 0;
}
`)
	if !hasRaceOn(reports, "counter") {
		t.Errorf("different locks must not suppress the race: %v", reports)
	}
}

func TestJoinOrderingSuppressesRace(t *testing.T) {
	reports := detect(t, `
int counter;
int *cp;
void worker(void *arg) {
	*cp = 1;
}
int main() {
	cp = &counter;
	thread_t t;
	t = spawn(worker, NULL);
	join(t);
	*cp = 2;
	return 0;
}
`)
	if hasRaceOn(reports, "counter") {
		t.Errorf("accesses ordered by join must not race: %v", reports)
	}
}

func TestNonAliasedAccessesNoRace(t *testing.T) {
	reports := detect(t, `
int a; int b;
int *pa; int *pb;
void worker(void *arg) {
	*pa = 1;
}
int main() {
	pa = &a;
	pb = &b;
	thread_t t;
	t = spawn(worker, NULL);
	*pb = 2;
	join(t);
	return 0;
}
`)
	if hasRaceOn(reports, "a") || hasRaceOn(reports, "b") {
		t.Errorf("non-aliased accesses must not race: %v", reports)
	}
}

func TestStoreLoadRace(t *testing.T) {
	reports := detect(t, `
int shared;
int *sp2;
int sink;
void reader(void *arg) {
	sink = *sp2;
}
int main() {
	sp2 = &shared;
	thread_t t;
	t = spawn(reader, NULL);
	*sp2 = 7;
	join(t);
	return 0;
}
`)
	if !hasRaceOn(reports, "shared") {
		t.Errorf("store-load pair should race: %v", reports)
	}
}

func TestDeterministicOrder(t *testing.T) {
	src := `
int x; int y;
int *p; int *q;
void w(void *arg) { *p = 1; *q = 2; }
int main() {
	p = &x; q = &y;
	thread_t t;
	t = spawn(w, NULL);
	*p = 3;
	*q = 4;
	join(t);
	return 0;
}
`
	a := detect(t, src)
	b := detect(t, src)
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Error("reports are not deterministic")
	}
	if len(a) == 0 {
		t.Error("expected some races")
	}
}

func TestRacesRequireInterleaving(t *testing.T) {
	an, err := fsam.AnalyzeSource("x.mc", `int main() { return 0; }`, fsam.Config{NoInterleaving: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.Races(); err == nil {
		t.Error("expected error when interleaving analysis is disabled")
	}
}

// Package mhp implements the paper's interleaving analysis (Section 3.3.1,
// Figure 7): a forward, flow- and context-sensitive data-flow over each
// thread's ICFG computing I(t,c,s) — the set of threads that may be alive
// when thread t executes statement s under calling context c — and the
// resulting may-happen-in-parallel relation on context-sensitive statements.
//
// Rule mapping:
//   - [I-DESCENDANT]: at a fork site the spawnee and its transitive
//     descendants join I after the fork, and every ancestor is seeded into
//     the spawnee's entry fact.
//   - [I-SIBLING]: sibling threads not ordered by happens-before seed each
//     other's entry facts.
//   - [I-JOIN]: join sites remove the joined thread and everything it fully
//     joins (KillClosure); symmetric join-all loops kill at their loop-exit
//     edges (EdgeKills).
//   - [I-CALL]/[I-RET]/[I-INTRA]: facts propagate along the thread's ICFG
//     with calls and returns matched context-sensitively (context pushes
//     are suppressed inside call-graph SCCs).
package mhp

import (
	"context"

	"repro/internal/callgraph"
	"repro/internal/engine"
	"repro/internal/icfg"
	"repro/internal/ir"
	"repro/internal/pts"
	"repro/internal/threads"
)

// StmtMHP is the interface consumed by the value-flow phase: a decision
// procedure for "may these two statements happen in parallel?". Both the
// precise interleaving analysis (Result) and the coarse PCG baseline
// implement it.
type StmtMHP interface {
	// MHPStmts reports whether some runtime instances of s1 and s2 may
	// execute concurrently.
	MHPStmts(s1, s2 ir.Stmt) bool
	// Bytes reports the memory footprint of the analysis facts.
	Bytes() uint64
}

// nodeCtx is a context-qualified ICFG node.
type nodeCtx struct {
	node *icfg.Node
	ctx  callgraph.Ctx
}

// ThreadCtx is one execution instance of a function: thread t running it
// under context ctx.
type ThreadCtx struct {
	Thread *threads.Thread
	Ctx    callgraph.Ctx
}

// Result holds the computed interleaving facts.
type Result struct {
	Model *threads.Model

	// facts[t] maps (node, ctx) to I(t,ctx,node): thread IDs that may run
	// in parallel when t executes the node under ctx.
	facts map[*threads.Thread]map[nodeCtx]*pts.Set

	// execsOf lists the (thread, ctx) instances executing each function.
	execsOf map[*ir.Function][]ThreadCtx

	// Iterations counts data-flow node visits (diagnostics).
	Iterations int
}

// Analyze runs the interleaving analysis for every abstract thread.
func Analyze(model *threads.Model) *Result {
	r, _ := AnalyzeCtx(context.Background(), model)
	return r
}

// AnalyzeCtx runs the interleaving analysis under a context. On
// cancellation it returns (nil, ctx.Err()); the per-thread data-flow loop
// polls at its worklist pop.
func AnalyzeCtx(ctx context.Context, model *threads.Model) (*Result, error) {
	r := &Result{
		Model:   model,
		facts:   map[*threads.Thread]map[nodeCtx]*pts.Set{},
		execsOf: map[*ir.Function][]ThreadCtx{},
	}
	for _, t := range model.Threads {
		for fc := range model.Funcs(t) {
			r.execsOf[fc.Func] = append(r.execsOf[fc.Func], ThreadCtx{Thread: t, Ctx: fc.Ctx})
		}
	}
	cancel := engine.NewLimitedCanceller(ctx)
	for _, t := range model.Threads {
		if err := r.analyzeThread(t, cancel); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// entrySeed computes the initial fact at a thread's start: its ancestors
// ([I-DESCENDANT], second conclusion, over the transitive spawn relation)
// and its unordered siblings ([I-SIBLING]).
func (r *Result) entrySeed(t *threads.Thread) *pts.Set {
	seed := &pts.Set{}
	for a := t.Spawner; a != nil; a = a.Spawner {
		seed.Add(uint32(a.ID))
	}
	for _, s := range r.Model.Threads {
		if s == t || seed.Has(uint32(s.ID)) {
			continue
		}
		if r.Model.Siblings(s, t) &&
			!r.Model.HappensBefore(s, t) && !r.Model.HappensBefore(t, s) {
			seed.Add(uint32(s.ID))
		}
	}
	return seed
}

// analyzeThread runs the forward data-flow for one thread over its ICFG.
func (r *Result) analyzeThread(t *threads.Thread, cancel *engine.Canceller) error {
	m := r.Model
	facts := map[nodeCtx]*pts.Set{}
	r.facts[t] = facts

	var work []nodeCtx
	inWork := map[nodeCtx]bool{}
	push := func(nc nodeCtx) {
		if !inWork[nc] {
			inWork[nc] = true
			work = append(work, nc)
		}
	}
	// join (union) incoming fact into nc; a first visit always schedules
	// the node even when the incoming set is empty.
	merge := func(nc nodeCtx, s *pts.Set) {
		f := facts[nc]
		fresh := f == nil
		if fresh {
			f = &pts.Set{}
			facts[nc] = f
		}
		if f.UnionWith(s) || fresh {
			push(nc)
		}
	}

	seed := r.entrySeed(t)
	for _, routine := range t.Routines {
		entry := m.G.EntryOf[routine]
		if entry == nil {
			continue
		}
		merge(nodeCtx{node: entry, ctx: t.StartCtx}, seed)
	}

	for len(work) > 0 {
		if cancel.Cancelled() {
			return cancel.Err()
		}
		nc := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[nc] = false
		r.Iterations++
		n, ctx := nc.node, nc.ctx

		// Node transfer: gen at fork sites, kill at join sites.
		out := facts[nc]
		genKill := false
		if n.Kind == icfg.NStmt {
			switch s := n.Stmt.(type) {
			case *ir.Fork:
				for _, kid := range m.ThreadsAtFork[s] {
					if kid.Spawner == t && kid.SpawnCtx == ctx {
						if !genKill {
							out = out.Copy()
							genKill = true
						}
						out.Add(uint32(kid.ID))
						out.UnionWith(m.Descendants(kid))
					}
				}
			case *ir.Join:
				kills := m.KillsAt(s, t)
				if !kills.IsEmpty() {
					filtered := &pts.Set{}
					out.ForEach(func(id uint32) {
						if !kills.Has(id) {
							filtered.Add(id)
						}
					})
					out = filtered
					genKill = true
				}
			}
		}

		// Edge propagation within the thread.
		for _, e := range n.Out {
			switch e.Kind {
			case icfg.EIntra:
				next := out
				ek := m.EdgeKills(n, e.To, t)
				if !ek.IsEmpty() {
					filtered := &pts.Set{}
					next.ForEach(func(id uint32) {
						if !ek.Has(id) {
							filtered.Add(id)
						}
					})
					next = filtered
				}
				merge(nodeCtx{node: e.To, ctx: ctx}, next)

			case icfg.ECall:
				callee := e.To.Func
				nctx := ctx
				if !m.CG.SameSCC(n.Func, callee) {
					nctx = m.Ctxs.Push(ctx, e.Site.ID())
				}
				merge(nodeCtx{node: e.To, ctx: nctx}, out)

			case icfg.ERet:
				caller := e.To.Func
				if m.CG.SameSCC(n.Func, caller) {
					// Context-insensitive within the SCC.
					merge(nodeCtx{node: e.To, ctx: ctx}, out)
				} else if m.Ctxs.Peek(ctx) == e.Site.ID() {
					merge(nodeCtx{node: e.To, ctx: m.Ctxs.Pop(ctx)}, out)
				}
				// Unmatched returns are not taken ([I-RET] matches calls).

			case icfg.EForkCall, icfg.EForkRet:
				// The spawnee runs in its own thread: not part of this
				// thread's ICFG.
			}
		}

		// A resolved call node has no intra successor; its fall-through is
		// modeled by the matched return edge above. A fork node falls
		// through via its EIntra edge to the return node.
	}
	return nil
}

// I returns I(t, ctx, s): the set of thread IDs that may run concurrently
// when t executes s under ctx (nil if s is unreachable in that instance).
func (r *Result) I(t *threads.Thread, ctx callgraph.Ctx, s ir.Stmt) *pts.Set {
	n := r.Model.G.StmtNode[s]
	if n == nil {
		return nil
	}
	return r.facts[t][nodeCtx{node: n, ctx: ctx}]
}

// Instances returns the (thread, ctx) executions of the function containing
// s. Instances whose data-flow never reached s simply carry nil facts and
// are filtered out by MHP.
func (r *Result) Instances(s ir.Stmt) []ThreadCtx {
	f := ir.StmtFunc(s)
	if f == nil {
		return nil
	}
	return r.execsOf[f]
}

// MHP reports whether the two context-sensitive statement instances may
// happen in parallel (the paper's (t1,c1,s1) ∥ (t2,c2,s2)).
func (r *Result) MHP(t1 *threads.Thread, c1 callgraph.Ctx, s1 ir.Stmt,
	t2 *threads.Thread, c2 callgraph.Ctx, s2 ir.Stmt) bool {
	if t1 == t2 {
		return t1.Multi
	}
	i1 := r.I(t1, c1, s1)
	if i1 == nil || !i1.Has(uint32(t2.ID)) {
		return false
	}
	i2 := r.I(t2, c2, s2)
	return i2 != nil && i2.Has(uint32(t1.ID))
}

// MHPStmts reports whether any instances of s1 and s2 may happen in
// parallel (implements StmtMHP).
func (r *Result) MHPStmts(s1, s2 ir.Stmt) bool {
	for _, i1 := range r.Instances(s1) {
		for _, i2 := range r.Instances(s2) {
			if r.MHP(i1.Thread, i1.Ctx, s1, i2.Thread, i2.Ctx, s2) {
				return true
			}
		}
	}
	return false
}

// MHPInstances returns the concrete instance pairs of s1 and s2 that may
// happen in parallel, for clients (e.g. race reporting) that need them.
func (r *Result) MHPInstances(s1, s2 ir.Stmt) [][2]ThreadCtx {
	var out [][2]ThreadCtx
	for _, i1 := range r.Instances(s1) {
		for _, i2 := range r.Instances(s2) {
			if r.MHP(i1.Thread, i1.Ctx, s1, i2.Thread, i2.Ctx, s2) {
				out = append(out, [2]ThreadCtx{i1, i2})
			}
		}
	}
	return out
}

// Bytes reports the memory held by interleaving facts.
func (r *Result) Bytes() uint64 {
	var total uint64
	for _, m := range r.facts {
		for _, s := range m {
			total += 24 + s.Bytes() // map entry overhead + set
		}
	}
	return total
}

var _ StmtMHP = (*Result)(nil)

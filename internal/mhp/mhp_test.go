package mhp_test

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/mhp"
	"repro/internal/pipeline"
	"repro/internal/threads"
)

// setup compiles src and runs the interleaving analysis.
func setup(t *testing.T, src string) (*pipeline.Base, *mhp.Result) {
	t.Helper()
	b, err := pipeline.FromSource("test.mc", src)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return b, b.Interleavings()
}

// storeToGlobal finds the (unique) store whose address is a direct AddrOf of
// the named global.
func storeToGlobal(t *testing.T, p *ir.Program, name string) *ir.Store {
	t.Helper()
	addrs := map[*ir.Var]bool{}
	for _, s := range p.Stmts {
		if a, ok := s.(*ir.AddrOf); ok && a.Obj.Kind == ir.ObjGlobal && a.Obj.Name == name {
			addrs[a.Dst] = true
		}
	}
	var found *ir.Store
	for _, s := range p.Stmts {
		if st, ok := s.(*ir.Store); ok && addrs[st.Addr] {
			if found != nil {
				t.Fatalf("multiple stores to %s", name)
			}
			found = st
		}
	}
	if found == nil {
		t.Fatalf("no store to global %s", name)
	}
	return found
}

func threadByRoutine(t *testing.T, m *threads.Model, name string) *threads.Thread {
	t.Helper()
	for _, th := range m.Threads {
		for _, r := range th.Routines {
			if r.Name == name {
				return th
			}
		}
	}
	t.Fatalf("no thread runs %s", name)
	return nil
}

// fig8 mirrors the paper's Figure 8: statements are modeled as stores to
// distinctly named globals so they can be located.
const fig8 = `
int s1g; int s2g; int s3g; int s4g; int s5g;

void bar(void *a) {
	s5g = 1;          // s5
}
void foo1(void *a) {
	thread_t t3;
	t3 = spawn(bar, NULL);   // fk3
	join(t3);                // jn3
}
void foo2(void *a) {
	bar(NULL);               // cs4
	s4g = 1;                 // s4
}
int main() {
	s1g = 1;                 // s1
	thread_t t1;
	t1 = spawn(foo1, NULL);  // fk1
	s2g = 1;                 // s2
	join(t1);                // jn1
	thread_t t2;
	t2 = spawn(foo2, NULL);  // fk2
	s3g = 1;                 // s3
	join(t2);                // jn2
	return 0;
}
`

func TestFig8MHPPairs(t *testing.T) {
	b, r := setup(t, fig8)
	s1 := storeToGlobal(t, b.Prog, "s1g")
	s2 := storeToGlobal(t, b.Prog, "s2g")
	s3 := storeToGlobal(t, b.Prog, "s3g")
	s4 := storeToGlobal(t, b.Prog, "s4g")
	s5 := storeToGlobal(t, b.Prog, "s5g")

	// Paper Figure 8(d): the MHP pairs are exactly
	//   (t0,s2) ∥ (t3,s5), (t0,s3) ∥ (t2,s5), (t0,s3) ∥ (t2,s4).
	if !r.MHPStmts(s2, s5) {
		t.Error("s2 ∥ s5 expected (t0 with t3's bar)")
	}
	if !r.MHPStmts(s3, s5) {
		t.Error("s3 ∥ s5 expected (t0 with t2's bar call)")
	}
	if !r.MHPStmts(s3, s4) {
		t.Error("s3 ∥ s4 expected")
	}
	// Not parallel: s1 precedes both forks; s2 is before jn1 but t2 is not
	// yet forked; s2 must not run in parallel with s4 (t2's body).
	if r.MHPStmts(s1, s5) {
		t.Error("s1 must not be ∥ s5 (before any fork)")
	}
	if r.MHPStmts(s1, s4) {
		t.Error("s1 must not be ∥ s4")
	}
	if r.MHPStmts(s2, s4) {
		t.Error("s2 must not be ∥ s4 (t2 forked only after jn1)")
	}
	if r.MHPStmts(s3, s2) {
		t.Error("same-thread statements of a single-instance thread are never MHP")
	}
}

func TestFig8ContextSensitivity(t *testing.T) {
	// s5 (in bar) has two instances: thread t3 running bar as its routine,
	// and thread t2 calling bar from foo2 at cs4. The paper stresses that
	// (t0,s2) ∥ (t3,s5) but (t0,s2) ∦ (t2,[2,4],s5).
	b, r := setup(t, fig8)
	s2 := storeToGlobal(t, b.Prog, "s2g")
	s5 := storeToGlobal(t, b.Prog, "s5g")
	t2 := threadByRoutine(t, b.Model, "foo2")
	t3 := threadByRoutine(t, b.Model, "bar")

	pairs := r.MHPInstances(s2, s5)
	for _, pr := range pairs {
		if pr[1].Thread == t2 {
			t.Errorf("s2 must not be parallel with s5 executed by t2 (context-sensitive)")
		}
	}
	foundT3 := false
	for _, pr := range pairs {
		if pr[1].Thread == t3 {
			foundT3 = true
		}
	}
	if !foundT3 {
		t.Error("s2 must be parallel with s5 executed by t3")
	}
}

func TestFig1aInterleaving(t *testing.T) {
	// Figure 1(a): *p = q in thread t interleaves with main's statements
	// after the fork.
	b, r := setup(t, `
int x; int y; int z;
int *p; int *q; int *r; int *c;
void foo(void *arg) {
	*p = q;
}
int main() {
	p = &x; q = &y; r = &z;
	thread_t t;
	t = spawn(foo, NULL);
	*p = r;
	c = *p;
	return 0;
}
`)
	s2 := storeToGlobal(t, b.Prog, "c") // c = *p store
	// The store *p = q inside foo.
	var fooStore *ir.Store
	for _, s := range b.Prog.Stmts {
		if st, ok := s.(*ir.Store); ok && ir.StmtFunc(st).Name == "foo" {
			fooStore = st
		}
	}
	if fooStore == nil {
		t.Fatal("no store in foo")
	}
	if !r.MHPStmts(s2, fooStore) {
		t.Error("c = *p must be MHP with *p = q in the unjoined thread")
	}
}

func TestJoinKillsInterleaving(t *testing.T) {
	// After join(t), the worker's statements must no longer be parallel.
	b, r := setup(t, `
int before; int after;
int wbody;
void worker(void *a) {
	wbody = 1;
}
int main() {
	thread_t t;
	t = spawn(worker, NULL);
	before = 1;
	join(t);
	after = 1;
	return 0;
}
`)
	sBefore := storeToGlobal(t, b.Prog, "before")
	sAfter := storeToGlobal(t, b.Prog, "after")
	sBody := storeToGlobal(t, b.Prog, "wbody")
	if !r.MHPStmts(sBefore, sBody) {
		t.Error("statement between fork and join must be MHP with worker body")
	}
	if r.MHPStmts(sAfter, sBody) {
		t.Error("statement after join must not be MHP with worker body")
	}
}

func TestFig11SymmetricLoops(t *testing.T) {
	// Figure 11 (word_count): threads forked and joined in two symmetric
	// loops; statements after the join loop must not be MHP with the slave
	// bodies, while statements between the loops are.
	b, r := setup(t, `
int inbetween; int post;
int wbody;
void wordcount_map(void *a) {
	wbody = 1;
}
int main() {
	thread_t tids[4];
	int i;
	for (i = 0; i < 4; i++) {
		tids[i] = spawn(wordcount_map, NULL);
	}
	inbetween = 1;
	for (i = 0; i < 4; i++) {
		join(tids[i]);
	}
	post = 1;
	return 0;
}
`)
	sBetween := storeToGlobal(t, b.Prog, "inbetween")
	sPost := storeToGlobal(t, b.Prog, "post")
	sBody := storeToGlobal(t, b.Prog, "wbody")
	if !r.MHPStmts(sBetween, sBody) {
		t.Error("statement between fork and join loops must be MHP with slave body")
	}
	if r.MHPStmts(sPost, sBody) {
		t.Error("statement after the join loop must not be MHP with slave body (Figure 11)")
	}
}

func TestMultiForkedSelfParallel(t *testing.T) {
	// Two instances of a multi-forked thread run in parallel with each
	// other, so a statement in its body is MHP with itself.
	b, r := setup(t, `
int wbody;
void worker(void *a) { wbody = 1; }
int main() {
	int i;
	for (i = 0; i < 4; i++) {
		thread_t t;
		t = spawn(worker, NULL);
	}
	return 0;
}
`)
	sBody := storeToGlobal(t, b.Prog, "wbody")
	if !r.MHPStmts(sBody, sBody) {
		t.Error("multi-forked thread body must be MHP with itself")
	}
}

func TestSingleThreadNotSelfParallel(t *testing.T) {
	b, r := setup(t, `
int wbody;
void worker(void *a) { wbody = 1; }
int main() {
	thread_t t;
	t = spawn(worker, NULL);
	join(t);
	return 0;
}
`)
	sBody := storeToGlobal(t, b.Prog, "wbody")
	if r.MHPStmts(sBody, sBody) {
		t.Error("a single-instance thread's statement is not MHP with itself")
	}
}

func TestMHPSymmetric(t *testing.T) {
	b, r := setup(t, fig8)
	stmts := []string{"s1g", "s2g", "s3g", "s4g", "s5g"}
	for _, a := range stmts {
		for _, bn := range stmts {
			sa := storeToGlobal(t, b.Prog, a)
			sb := storeToGlobal(t, b.Prog, bn)
			if r.MHPStmts(sa, sb) != r.MHPStmts(sb, sa) {
				t.Errorf("MHP not symmetric for %s,%s", a, bn)
			}
		}
	}
}

func TestSiblingHBPreventsMHP(t *testing.T) {
	// Worker A is fully joined before worker B is forked: never parallel.
	b, r := setup(t, `
int abody; int bbody;
void wa(void *x) { abody = 1; }
void wb(void *x) { bbody = 1; }
int main() {
	thread_t ta;
	ta = spawn(wa, NULL);
	join(ta);
	thread_t tb;
	tb = spawn(wb, NULL);
	join(tb);
	return 0;
}
`)
	sa := storeToGlobal(t, b.Prog, "abody")
	sb := storeToGlobal(t, b.Prog, "bbody")
	if r.MHPStmts(sa, sb) {
		t.Error("HB-ordered siblings must not be MHP")
	}
}

func TestBytesNonZero(t *testing.T) {
	_, r := setup(t, fig8)
	if r.Bytes() == 0 {
		t.Error("expected nonzero fact memory")
	}
	if r.Iterations == 0 {
		t.Error("expected nonzero iterations")
	}
}

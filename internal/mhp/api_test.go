package mhp_test

import (
	"testing"

	"repro/internal/callgraph"
	"repro/internal/ir"
)

// TestInstancesAPI covers the instance-enumeration surface used by the
// value-flow phase and the clients.
func TestInstancesAPI(t *testing.T) {
	b, r := setup(t, `
int shared;
void helper() { shared = 1; }
void w(void *a) { helper(); }
int main() {
	helper();
	thread_t t;
	t = spawn(w, NULL);
	join(t);
	return 0;
}
`)
	var helperStore ir.Stmt
	for _, s := range b.Prog.Stmts {
		if st, ok := s.(*ir.Store); ok && ir.StmtFunc(st).Name == "helper" {
			helperStore = st
		}
	}
	if helperStore == nil {
		t.Fatal("no store in helper")
	}
	insts := r.Instances(helperStore)
	// helper executes in two instances: main's direct call and the
	// worker's call.
	if len(insts) != 2 {
		t.Fatalf("instances = %d, want 2", len(insts))
	}
	threads := map[int]bool{}
	for _, in := range insts {
		threads[in.Thread.ID] = true
		if in.Ctx == callgraph.EmptyCtx {
			t.Error("call through helper must carry a pushed context")
		}
	}
	if len(threads) != 2 {
		t.Errorf("instance threads = %v, want main and worker", threads)
	}
}

// TestIQueryDirect covers the raw I(t,c,s) query.
func TestIQueryDirect(t *testing.T) {
	b, r := setup(t, `
int before2; int wbody2;
void w(void *a) { wbody2 = 1; }
int main() {
	thread_t t;
	t = spawn(w, NULL);
	before2 = 1;
	join(t);
	return 0;
}
`)
	sBefore := storeToGlobal(t, b.Prog, "before2")
	worker := threadByRoutine(t, b.Model, "w")
	// From main's perspective, the worker is live at the store between
	// fork and join.
	set := r.I(b.Model.Main, callgraph.EmptyCtx, sBefore)
	if set == nil || !set.Has(uint32(worker.ID)) {
		t.Errorf("I(main, [], before) = %v, want to contain worker", set)
	}
	// Unreachable instance: the worker thread never executes main's store.
	if got := r.I(worker, worker.StartCtx, sBefore); got != nil {
		t.Errorf("I(worker, start, mainStore) = %v, want nil", got)
	}
}

// TestMHPInstancesShape checks the pair-listing API.
func TestMHPInstancesShape(t *testing.T) {
	b, r := setup(t, `
int a3; int b3;
void w(void *x) { a3 = 1; }
int main() {
	thread_t t;
	t = spawn(w, NULL);
	b3 = 1;
	join(t);
	return 0;
}
`)
	sa := storeToGlobal(t, b.Prog, "a3")
	sb := storeToGlobal(t, b.Prog, "b3")
	pairs := r.MHPInstances(sa, sb)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(pairs))
	}
	if pairs[0][0].Thread == pairs[0][1].Thread {
		t.Error("pair must cross threads")
	}
}

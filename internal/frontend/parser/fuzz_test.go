package parser_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/frontend/parser"
)

// FuzzParse: ParseChecked never panics — malformed input comes back as a
// positioned error, hostile nesting as a depth error, and a nil error
// always carries a non-nil file.
func FuzzParse(f *testing.F) {
	f.Add("int main() { int x; int *p; p = &x; return 0; }")
	f.Add("int main() { spawn w(); join; }")
	f.Add("int main() { if (x) { } else { while (y) { } } }")
	f.Add("int main() { return " + strings.Repeat("(", 300) + "1; }")
	f.Add("}{)(;;")
	paths, _ := filepath.Glob(filepath.Join("..", "..", "..", "testdata", "*.mc"))
	for _, p := range paths {
		if src, err := os.ReadFile(p); err == nil {
			f.Add(string(src))
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := parser.ParseChecked("fuzz.mc", src)
		if err == nil && file == nil {
			t.Fatal("nil error with nil file")
		}
		if err != nil && !strings.HasPrefix(err.Error(), "fuzz.mc:") {
			t.Fatalf("error not positioned: %v", err)
		}
	})
}

// Package parser implements a recursive-descent parser for MiniC, the C
// subset accepted by this repository (pointers, structs, monolithic arrays,
// functions and function pointers, malloc, and the Pthreads-like
// spawn/join/lock/unlock primitives).
package parser

import (
	"fmt"
	"strconv"

	"repro/internal/frontend/ast"
	"repro/internal/frontend/lexer"
	"repro/internal/frontend/token"
	"repro/internal/frontend/types"
)

// Parser parses one MiniC translation unit.
type Parser struct {
	toks    []token.Token
	pos     int
	errs    []error
	structs map[string]*types.Struct
	depth   int
	bailed  bool
}

// maxDepth bounds statement/expression nesting. Recursive descent consumes
// Go stack proportionally to input nesting, so without a bound a hostile
// input of a few hundred KB of "(((((..." exhausts the stack — a panic no
// recover can contain. Exceeding it is a positioned syntax error.
const maxDepth = 256

// Parse parses src (name is used in diagnostics only) and returns the file
// plus any syntax errors. A non-nil file is returned even on error so tools
// can proceed best-effort.
func Parse(name, src string) (*ast.File, []error) {
	toks, lexErrs := lexer.All(src)
	p := &Parser{toks: toks, structs: map[string]*types.Struct{}}
	p.errs = append(p.errs, lexErrs...)
	file := p.parseFile(name)
	return file, p.errs
}

// ParseChecked parses src and returns the file, or a positioned error
// ("name:line:col: message") describing the first problem and how many
// more follow. It is the error-returning replacement for the old
// panicking MustParse: malformed input is a value, not a crash.
func ParseChecked(name, src string) (*ast.File, error) {
	f, errs := Parse(name, src)
	switch len(errs) {
	case 0:
		return f, nil
	case 1:
		return nil, fmt.Errorf("%s:%w", name, errs[0])
	default:
		return nil, fmt.Errorf("%s:%w (and %d more)", name, errs[0], len(errs)-1)
	}
}

func (p *Parser) cur() token.Token { return p.toks[p.pos] }
func (p *Parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) errorf(format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...)))
}

// enter records one nesting level for the recursive-descent guard. It
// reports false at the cap, recording one positioned error and
// fast-forwarding to EOF so every recursion unwinds promptly.
func (p *Parser) enter() bool {
	p.depth++
	if p.depth <= maxDepth {
		return true
	}
	if !p.bailed {
		p.bailed = true
		p.errorf("nesting deeper than %d levels", maxDepth)
		p.pos = len(p.toks) - 1
	}
	return false
}

func (p *Parser) leave() { p.depth-- }

// sync skips tokens until after the next semicolon or before a closing
// brace, to recover from a syntax error.
func (p *Parser) sync() {
	for !p.at(token.EOF) {
		if p.accept(token.SEMI) {
			return
		}
		if p.at(token.RBRACE) {
			return
		}
		p.next()
	}
}

// ---- Types ----

// isTypeStart reports whether the current token can begin a type.
func (p *Parser) isTypeStart() bool {
	switch p.cur().Kind {
	case token.KwInt, token.KwVoid, token.KwChar, token.KwStruct,
		token.KwThreadT, token.KwLockT:
		return true
	}
	return false
}

// parseBaseType parses a type without pointer stars.
func (p *Parser) parseBaseType() types.Type {
	switch p.cur().Kind {
	case token.KwInt:
		p.next()
		return types.Int
	case token.KwVoid:
		p.next()
		return types.Void
	case token.KwChar:
		p.next()
		return types.Char
	case token.KwThreadT:
		p.next()
		return types.Thread
	case token.KwLockT:
		p.next()
		return types.Lock
	case token.KwStruct:
		p.next()
		name := p.expect(token.IDENT).Lit
		return p.structType(name)
	}
	p.errorf("expected type, found %s", p.cur())
	p.next()
	return types.Int
}

// structType returns the (possibly forward-declared) struct named name.
func (p *Parser) structType(name string) *types.Struct {
	if s, ok := p.structs[name]; ok {
		return s
	}
	s := &types.Struct{Name: name}
	p.structs[name] = s
	return s
}

// parseStars wraps base in one pointer level per '*'.
func (p *Parser) parseStars(base types.Type) types.Type {
	for p.accept(token.STAR) {
		base = types.PointerTo(base)
	}
	return base
}

// parseArraySuffix wraps t in array types for each trailing [N].
func (p *Parser) parseArraySuffix(t types.Type) types.Type {
	for p.accept(token.LBRACKET) {
		n := 0
		if p.at(token.INT) {
			n, _ = strconv.Atoi(p.next().Lit)
		} else if !p.at(token.RBRACKET) {
			// Permit symbolic sizes; the analyses are size-insensitive.
			p.next()
		}
		p.expect(token.RBRACKET)
		t = &types.Array{Elem: t, Len: n}
	}
	return t
}

// ---- Declarations ----

func (p *Parser) parseFile(name string) *ast.File {
	f := &ast.File{Name: name}
	for !p.at(token.EOF) {
		switch {
		case p.at(token.KwStruct) && p.peek().Kind == token.IDENT && p.peekIsStructDef():
			f.Structs = append(f.Structs, p.parseStructDecl())
		case p.isTypeStart():
			p.parseTopLevel(f)
		default:
			p.errorf("unexpected token %s at top level", p.cur())
			p.next()
		}
	}
	return f
}

// peekIsStructDef distinguishes `struct S { ... };` from `struct S x;`.
func (p *Parser) peekIsStructDef() bool {
	if p.pos+2 < len(p.toks) {
		return p.toks[p.pos+2].Kind == token.LBRACE
	}
	return false
}

func (p *Parser) parseStructDecl() *ast.StructDecl {
	pos := p.cur().Pos
	p.expect(token.KwStruct)
	name := p.expect(token.IDENT).Lit
	st := p.structType(name)
	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		ft := p.parseStars(p.parseBaseType())
		fname := p.expect(token.IDENT).Lit
		ft = p.parseArraySuffix(ft)
		st.Fields = append(st.Fields, types.Field{Name: fname, Type: ft})
		p.expect(token.SEMI)
	}
	p.expect(token.RBRACE)
	p.expect(token.SEMI)
	return &ast.StructDecl{P: pos, Name: name, Type: st}
}

// parseTopLevel parses a global variable or a function.
func (p *Parser) parseTopLevel(f *ast.File) {
	pos := p.cur().Pos
	base := p.parseBaseType()
	t := p.parseStars(base)
	name := p.expect(token.IDENT).Lit
	if p.at(token.LPAREN) {
		f.Funcs = append(f.Funcs, p.parseFuncRest(pos, name, t))
		return
	}
	// Global variable(s).
	for {
		vt := p.parseArraySuffix(t)
		var init ast.Expr
		if p.accept(token.ASSIGN) {
			init = p.parseExpr()
		}
		f.Globals = append(f.Globals, &ast.VarDecl{P: pos, Name: name, Type: vt, Init: init})
		if !p.accept(token.COMMA) {
			break
		}
		t2 := p.parseStars(base)
		t = t2
		name = p.expect(token.IDENT).Lit
	}
	p.expect(token.SEMI)
}

func (p *Parser) parseFuncRest(pos token.Pos, name string, ret types.Type) *ast.FuncDecl {
	d := &ast.FuncDecl{P: pos, Name: name, Ret: ret}
	p.expect(token.LPAREN)
	if p.at(token.KwVoid) && p.peek().Kind == token.RPAREN {
		p.next()
	}
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		ppos := p.cur().Pos
		pt := p.parseStars(p.parseBaseType())
		pname := ""
		if p.at(token.IDENT) {
			pname = p.next().Lit
		}
		pt = p.parseArraySuffix(pt)
		d.Params = append(d.Params, &ast.Param{P: ppos, Name: pname, Type: pt})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	if p.accept(token.SEMI) {
		return d // prototype
	}
	d.Body = p.parseBlock()
	return d
}

// ---- Statements ----

func (p *Parser) parseBlock() *ast.BlockStmt {
	pos := p.cur().Pos
	p.expect(token.LBRACE)
	b := &ast.BlockStmt{P: pos}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.expect(token.RBRACE)
	return b
}

func (p *Parser) parseStmt() ast.Stmt {
	pos := p.cur().Pos
	if !p.enter() {
		return &ast.BlockStmt{P: pos}
	}
	defer p.leave()
	switch p.cur().Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.KwIf:
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		thenS := p.parseStmt()
		var elseS ast.Stmt
		if p.accept(token.KwElse) {
			elseS = p.parseStmt()
		}
		return &ast.IfStmt{P: pos, Cond: cond, Then: thenS, Else: elseS}
	case token.KwWhile:
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.WhileStmt{P: pos, Cond: cond, Body: p.parseStmt()}
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		p.next()
		var x ast.Expr
		if !p.at(token.SEMI) {
			x = p.parseExpr()
		}
		p.expect(token.SEMI)
		return &ast.ReturnStmt{P: pos, X: x}
	case token.KwBreak:
		p.next()
		p.expect(token.SEMI)
		return &ast.BreakStmt{P: pos}
	case token.KwContinue:
		p.next()
		p.expect(token.SEMI)
		return &ast.ContinueStmt{P: pos}
	case token.KwJoin:
		p.next()
		p.expect(token.LPAREN)
		h := p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.JoinStmt{P: pos, Handle: h}
	case token.KwFree:
		p.next()
		p.expect(token.LPAREN)
		x := p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.FreeStmt{P: pos, X: x}
	case token.KwLock:
		p.next()
		p.expect(token.LPAREN)
		x := p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.LockStmt{P: pos, Ptr: x}
	case token.KwUnlock:
		p.next()
		p.expect(token.LPAREN)
		x := p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.UnlockStmt{P: pos, Ptr: x}
	case token.SEMI:
		p.next()
		return &ast.BlockStmt{P: pos} // empty statement
	}
	if p.isTypeStart() {
		d := p.parseLocalDecl()
		return d
	}
	s := p.parseSimpleStmt()
	p.expect(token.SEMI)
	return s
}

// parseLocalDecl parses `type declarator [= init];`.
func (p *Parser) parseLocalDecl() ast.Stmt {
	pos := p.cur().Pos
	t := p.parseStars(p.parseBaseType())
	name := p.expect(token.IDENT).Lit
	t = p.parseArraySuffix(t)
	var init ast.Expr
	if p.accept(token.ASSIGN) {
		init = p.parseExpr()
	}
	p.expect(token.SEMI)
	return &ast.DeclStmt{Decl: &ast.VarDecl{P: pos, Name: name, Type: t, Init: init}}
}

// parseSimpleStmt parses an assignment, inc/dec, or expression statement
// (without the trailing semicolon).
func (p *Parser) parseSimpleStmt() ast.Stmt {
	pos := p.cur().Pos
	x := p.parseExpr()
	switch {
	case p.accept(token.ASSIGN):
		rhs := p.parseExpr()
		return &ast.AssignStmt{P: pos, LHS: x, RHS: rhs}
	case p.at(token.INC) || p.at(token.DEC):
		op := token.PLUS
		if p.cur().Kind == token.DEC {
			op = token.MINUS
		}
		p.next()
		one := &ast.IntLit{P: pos, Value: 1}
		return &ast.AssignStmt{P: pos, LHS: x, RHS: &ast.Binary{P: pos, Op: op, X: x, Y: one}}
	default:
		return &ast.ExprStmt{P: pos, X: x}
	}
}

func (p *Parser) parseFor() ast.Stmt {
	pos := p.cur().Pos
	p.expect(token.KwFor)
	p.expect(token.LPAREN)
	var initS ast.Stmt
	if !p.at(token.SEMI) {
		if p.isTypeStart() {
			initS = p.parseLocalDecl() // consumes the semicolon
		} else {
			initS = p.parseSimpleStmt()
			p.expect(token.SEMI)
		}
	} else {
		p.expect(token.SEMI)
	}
	var cond ast.Expr
	if !p.at(token.SEMI) {
		cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	var post ast.Stmt
	if !p.at(token.RPAREN) {
		post = p.parseSimpleStmt()
	}
	p.expect(token.RPAREN)
	body := p.parseStmt()
	return &ast.ForStmt{P: pos, Init: initS, Cond: cond, Post: post, Body: body}
}

// ---- Expressions ----

// Binary operator precedence (higher binds tighter).
func precOf(k token.Kind) int {
	switch k {
	case token.LOR:
		return 1
	case token.LAND:
		return 2
	case token.EQ, token.NEQ:
		return 3
	case token.LT, token.GT, token.LE, token.GE:
		return 4
	case token.PLUS, token.MINUS:
		return 5
	case token.STAR, token.SLASH, token.PERCENT:
		return 6
	}
	return 0
}

func (p *Parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec := precOf(p.cur().Kind)
		if prec < minPrec || prec == 0 {
			return x
		}
		op := p.next()
		y := p.parseBinary(prec + 1)
		x = &ast.Binary{P: op.Pos, Op: op.Kind, X: x, Y: y}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	pos := p.cur().Pos
	if !p.enter() {
		return &ast.IntLit{P: pos}
	}
	defer p.leave()
	switch p.cur().Kind {
	case token.STAR:
		p.next()
		return &ast.Unary{P: pos, Op: token.STAR, X: p.parseUnary()}
	case token.AMP:
		p.next()
		return &ast.Unary{P: pos, Op: token.AMP, X: p.parseUnary()}
	case token.MINUS:
		p.next()
		return &ast.Unary{P: pos, Op: token.MINUS, X: p.parseUnary()}
	case token.NOT:
		p.next()
		return &ast.Unary{P: pos, Op: token.NOT, X: p.parseUnary()}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		pos := p.cur().Pos
		switch {
		case p.accept(token.ARROW):
			name := p.expect(token.IDENT).Lit
			x = &ast.FieldSel{P: pos, X: x, Name: name, Arrow: true}
		case p.accept(token.DOT):
			name := p.expect(token.IDENT).Lit
			x = &ast.FieldSel{P: pos, X: x, Name: name, Arrow: false}
		case p.accept(token.LBRACKET):
			i := p.parseExpr()
			p.expect(token.RBRACKET)
			x = &ast.Index{P: pos, X: x, I: i}
		case p.at(token.LPAREN):
			p.next()
			call := &ast.CallExpr{P: pos, Fun: x}
			for !p.at(token.RPAREN) && !p.at(token.EOF) {
				call.Args = append(call.Args, p.parseExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
			x = call
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() ast.Expr {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.IDENT:
		return &ast.Ident{P: pos, Name: p.next().Lit}
	case token.INT:
		t := p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errs = append(p.errs, fmt.Errorf("%s: bad integer %q", t.Pos, t.Lit))
		}
		return &ast.IntLit{P: pos, Value: v}
	case token.STRING:
		return &ast.StringLit{P: pos, Value: p.next().Lit}
	case token.KwNull:
		p.next()
		return &ast.NullLit{P: pos}
	case token.KwMalloc:
		p.next()
		p.expect(token.LPAREN)
		// Accept and ignore an optional size expression, C-style.
		if !p.at(token.RPAREN) {
			p.parseExpr()
		}
		p.expect(token.RPAREN)
		return &ast.MallocExpr{P: pos}
	case token.KwSpawn:
		p.next()
		p.expect(token.LPAREN)
		routine := p.parseExpr()
		var arg ast.Expr
		if p.accept(token.COMMA) {
			arg = p.parseExpr()
		}
		p.expect(token.RPAREN)
		return &ast.SpawnExpr{P: pos, Routine: routine, Arg: arg}
	case token.LPAREN:
		p.next()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return x
	}
	p.errorf("expected expression, found %s", p.cur())
	p.next()
	return &ast.IntLit{P: pos}
}

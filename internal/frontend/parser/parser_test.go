package parser_test

import (
	"strings"
	"testing"

	"repro/internal/frontend/ast"
	"repro/internal/frontend/parser"
	"repro/internal/frontend/types"
)

// parse parses src, failing on errors.
func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, errs := parser.Parse("test.mc", src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return f
}

func TestGlobalsAndTypes(t *testing.T) {
	f := parse(t, `
int a;
int *p;
int **pp;
int arr[10];
thread_t tid;
lock_t m;
char *name;
int main() { return 0; }
`)
	if len(f.Globals) != 7 {
		t.Fatalf("globals = %d, want 7", len(f.Globals))
	}
	wantTypes := []string{"int", "int*", "int**", "int[10]", "thread_t", "lock_t", "char*"}
	for i, g := range f.Globals {
		if g.Type.String() != wantTypes[i] {
			t.Errorf("global %s type %s, want %s", g.Name, g.Type, wantTypes[i])
		}
	}
}

func TestStructDeclAndFields(t *testing.T) {
	f := parse(t, `
struct Node { int val; struct Node *next; int *data; };
struct Node head;
int main() { return 0; }
`)
	if len(f.Structs) != 1 {
		t.Fatalf("structs = %d", len(f.Structs))
	}
	st := f.Structs[0].Type
	if st.FieldIndex("val") != 0 || st.FieldIndex("next") != 1 || st.FieldIndex("data") != 2 {
		t.Errorf("field indices wrong: %+v", st.Fields)
	}
	if st.FieldIndex("missing") != -1 {
		t.Error("missing field must be -1")
	}
	// Self-referential pointer type resolves to the same struct.
	next := st.Fields[1].Type.(*types.Pointer).Elem.(*types.Struct)
	if next != st {
		t.Error("struct Node *next must reference the same struct type")
	}
}

func TestFunctionsAndParams(t *testing.T) {
	f := parse(t, `
int add(int a, int b) { return a + b; }
void nothing(void) { }
int *find(struct S *where, int key);
struct S { int k; };
int main() { return 0; }
`)
	if len(f.Funcs) != 4 {
		t.Fatalf("funcs = %d", len(f.Funcs))
	}
	add := f.Funcs[0]
	if len(add.Params) != 2 || add.Params[0].Name != "a" {
		t.Errorf("add params: %+v", add.Params)
	}
	if f.Funcs[1].Body == nil {
		t.Error("nothing must have a body")
	}
	if f.Funcs[2].Body != nil {
		t.Error("prototype must have no body")
	}
	sig := add.Signature()
	if sig.Ret != types.Int || len(sig.Params) != 2 {
		t.Errorf("signature: %v", sig)
	}
}

func TestControlFlowStatements(t *testing.T) {
	f := parse(t, `
int main() {
	int i;
	if (i > 0) { i = 1; } else { i = 2; }
	while (i < 10) { i++; }
	for (i = 0; i < 5; i++) { continue; }
	for (;;) { break; }
	return i;
}
`)
	body := f.Funcs[0].Body.Stmts
	if _, ok := body[1].(*ast.IfStmt); !ok {
		t.Errorf("stmt 1 = %T, want IfStmt", body[1])
	}
	if _, ok := body[2].(*ast.WhileStmt); !ok {
		t.Errorf("stmt 2 = %T, want WhileStmt", body[2])
	}
	forStmt, ok := body[3].(*ast.ForStmt)
	if !ok || forStmt.Init == nil || forStmt.Cond == nil || forStmt.Post == nil {
		t.Errorf("stmt 3 = %T (%+v)", body[3], body[3])
	}
	bare, ok := body[4].(*ast.ForStmt)
	if !ok || bare.Init != nil || bare.Cond != nil || bare.Post != nil {
		t.Errorf("bare for: %+v", body[4])
	}
}

func TestExpressionPrecedence(t *testing.T) {
	f := parse(t, `int main() { int x; x = 1 + 2 * 3; return 0; }`)
	assign := f.Funcs[0].Body.Stmts[1].(*ast.AssignStmt)
	add, ok := assign.RHS.(*ast.Binary)
	if !ok {
		t.Fatalf("RHS = %T", assign.RHS)
	}
	// 1 + (2*3): top must be +, right child *.
	if _, ok := add.Y.(*ast.Binary); !ok {
		t.Errorf("precedence wrong: %+v", add)
	}
}

func TestPointerExpressions(t *testing.T) {
	f := parse(t, `
struct S { int *f; };
int main() {
	struct S s; struct S *ps; int x; int *p; int a[4];
	p = &x;
	x = *p;
	ps = &s;
	ps->f = p;
	s.f = p;
	a[2] = x;
	return 0;
}
`)
	stmts := f.Funcs[0].Body.Stmts
	// ps->f = p
	arrow := stmts[8].(*ast.AssignStmt).LHS.(*ast.FieldSel)
	if !arrow.Arrow || arrow.Name != "f" {
		t.Errorf("arrow field: %+v", arrow)
	}
	dot := stmts[9].(*ast.AssignStmt).LHS.(*ast.FieldSel)
	if dot.Arrow {
		t.Errorf("dot field parsed as arrow")
	}
	if _, ok := stmts[10].(*ast.AssignStmt).LHS.(*ast.Index); !ok {
		t.Errorf("index assignment: %+v", stmts[10])
	}
}

func TestSpawnJoinLockUnlock(t *testing.T) {
	f := parse(t, `
void w(void *a) { }
int main() {
	lock_t m;
	thread_t t;
	t = spawn(w, NULL);
	lock(&m);
	unlock(&m);
	join(t);
	return 0;
}
`)
	stmts := f.Funcs[1].Body.Stmts
	sp := stmts[2].(*ast.AssignStmt).RHS.(*ast.SpawnExpr)
	if sp.Routine.(*ast.Ident).Name != "w" {
		t.Errorf("spawn routine: %+v", sp.Routine)
	}
	if _, ok := sp.Arg.(*ast.NullLit); !ok {
		t.Errorf("spawn arg: %T", sp.Arg)
	}
	if _, ok := stmts[3].(*ast.LockStmt); !ok {
		t.Errorf("lock: %T", stmts[3])
	}
	if _, ok := stmts[4].(*ast.UnlockStmt); !ok {
		t.Errorf("unlock: %T", stmts[4])
	}
	if _, ok := stmts[5].(*ast.JoinStmt); !ok {
		t.Errorf("join: %T", stmts[5])
	}
}

func TestMallocWithAndWithoutSize(t *testing.T) {
	f := parse(t, `int main() { int *p; p = malloc(); p = malloc(32); return 0; }`)
	stmts := f.Funcs[0].Body.Stmts
	for _, i := range []int{1, 2} {
		if _, ok := stmts[i].(*ast.AssignStmt).RHS.(*ast.MallocExpr); !ok {
			t.Errorf("stmt %d RHS: %T", i, stmts[i].(*ast.AssignStmt).RHS)
		}
	}
}

func TestCallExpressions(t *testing.T) {
	f := parse(t, `
int g(int a) { return a; }
int main() {
	int x;
	x = g(1);
	g(x);
	return 0;
}
`)
	stmts := f.Funcs[1].Body.Stmts
	if _, ok := stmts[1].(*ast.AssignStmt).RHS.(*ast.CallExpr); !ok {
		t.Error("call in assignment")
	}
	if _, ok := stmts[2].(*ast.ExprStmt).X.(*ast.CallExpr); !ok {
		t.Error("call statement")
	}
}

func TestIncDecDesugar(t *testing.T) {
	f := parse(t, `int main() { int i; i++; i--; return 0; }`)
	stmts := f.Funcs[0].Body.Stmts
	for _, idx := range []int{1, 2} {
		as, ok := stmts[idx].(*ast.AssignStmt)
		if !ok {
			t.Fatalf("stmt %d: %T", idx, stmts[idx])
		}
		if _, ok := as.RHS.(*ast.Binary); !ok {
			t.Errorf("stmt %d RHS: %T", idx, as.RHS)
		}
	}
}

func TestGlobalInitializers(t *testing.T) {
	f := parse(t, `
int x;
int *p = &x;
int n = 3;
int main() { return 0; }
`)
	if f.Globals[1].Init == nil || f.Globals[2].Init == nil {
		t.Error("initializers not captured")
	}
	if _, ok := f.Globals[1].Init.(*ast.Unary); !ok {
		t.Errorf("&x init: %T", f.Globals[1].Init)
	}
}

func TestSyntaxErrorsRecovered(t *testing.T) {
	_, errs := parser.Parse("bad.mc", `
int main() {
	int x = ;
	x = 1;
	return 0;
}
`)
	if len(errs) == 0 {
		t.Error("expected syntax errors")
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, errs := parser.Parse("bad.mc", "int main() { @ }")
	if len(errs) == 0 {
		t.Fatal("expected errors")
	}
	if errs[0].Error() == "" {
		t.Error("empty error message")
	}
}

func TestParseCheckedReturnsPositionedError(t *testing.T) {
	f, err := parser.ParseChecked("bad.mc", "int main( {")
	if err == nil {
		t.Fatal("ParseChecked must return an error on bad input, not panic")
	}
	if f != nil {
		t.Error("ParseChecked must return a nil file on error")
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "bad.mc:1:") {
		t.Errorf("error %q lacks a file:line:col position prefix", msg)
	}
}

func TestParseCheckedOK(t *testing.T) {
	f, err := parser.ParseChecked("ok.mc", "int main() { return 0; }")
	if err != nil {
		t.Fatalf("ParseChecked: %v", err)
	}
	if len(f.Funcs) != 1 {
		t.Fatalf("got %d funcs, want 1", len(f.Funcs))
	}
}

func TestDeepNestingIsErrorNotStackOverflow(t *testing.T) {
	src := "int main() { int x; x = " + strings.Repeat("(", 100000) + "1" +
		strings.Repeat(")", 100000) + "; return 0; }"
	_, errs := parser.Parse("deep.mc", src)
	if len(errs) == 0 {
		t.Fatal("expected a nesting-depth error")
	}
}

func TestLogicalOperators(t *testing.T) {
	parse(t, `int main() { int a; int b; if (a > 0 && b < 2 || !a) { a = 1; } return 0; }`)
}

func TestNestedParens(t *testing.T) {
	f := parse(t, `int main() { int x; x = ((1 + 2)) * 3; return 0; }`)
	assign := f.Funcs[0].Body.Stmts[1].(*ast.AssignStmt)
	top := assign.RHS.(*ast.Binary)
	if _, ok := top.X.(*ast.Binary); !ok {
		t.Error("parenthesized group must bind first")
	}
}

// Package types defines MiniC's small type system: integers, pointers,
// structs (with named fields resolved to indices), fixed-size arrays
// (analyzed monolithically, as in the paper), functions, thread handles and
// locks.
package types

import (
	"fmt"
	"strings"
)

// Type is implemented by all MiniC types.
type Type interface {
	String() string
	// Equal reports structural equality (structs compare by name).
	Equal(Type) bool
}

// Basic is a non-composite type.
type Basic struct {
	Name string // "int", "void", "char", "thread_t", "lock_t"
}

func (b *Basic) String() string { return b.Name }
func (b *Basic) Equal(t Type) bool {
	o, ok := t.(*Basic)
	return ok && o.Name == b.Name
}

// Canonical basic types.
var (
	Int    = &Basic{Name: "int"}
	Void   = &Basic{Name: "void"}
	Char   = &Basic{Name: "char"}
	Thread = &Basic{Name: "thread_t"}
	Lock   = &Basic{Name: "lock_t"}
)

// Pointer is a pointer to Elem. A *void pointer has Elem == Void and is
// assignment-compatible with any pointer (C-style).
type Pointer struct {
	Elem Type
}

func (p *Pointer) String() string { return p.Elem.String() + "*" }
func (p *Pointer) Equal(t Type) bool {
	o, ok := t.(*Pointer)
	return ok && p.Elem.Equal(o.Elem)
}

// PointerTo returns a pointer type to elem.
func PointerTo(elem Type) *Pointer { return &Pointer{Elem: elem} }

// Field is a struct member.
type Field struct {
	Name string
	Type Type
}

// Struct is a named struct type. Structs are nominal: two structs are equal
// iff their names match.
type Struct struct {
	Name   string
	Fields []Field
}

func (s *Struct) String() string { return "struct " + s.Name }
func (s *Struct) Equal(t Type) bool {
	o, ok := t.(*Struct)
	return ok && o.Name == s.Name
}

// FieldIndex returns the index of the named field, or -1.
func (s *Struct) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Array is a fixed-size array. Arrays are modeled monolithically by the
// analyses: indexing yields the array object itself.
type Array struct {
	Elem Type
	Len  int
}

func (a *Array) String() string { return fmt.Sprintf("%s[%d]", a.Elem, a.Len) }
func (a *Array) Equal(t Type) bool {
	o, ok := t.(*Array)
	return ok && o.Len == a.Len && a.Elem.Equal(o.Elem)
}

// Func is a function type.
type Func struct {
	Params []Type
	Ret    Type
}

func (f *Func) String() string {
	parts := make([]string, len(f.Params))
	for i, p := range f.Params {
		parts[i] = p.String()
	}
	return fmt.Sprintf("%s(%s)", f.Ret, strings.Join(parts, ", "))
}

func (f *Func) Equal(t Type) bool {
	o, ok := t.(*Func)
	if !ok || len(o.Params) != len(f.Params) || !f.Ret.Equal(o.Ret) {
		return false
	}
	for i := range f.Params {
		if !f.Params[i].Equal(o.Params[i]) {
			return false
		}
	}
	return true
}

// IsPointerLike reports whether values of t can carry points-to information:
// pointers, thread handles (which carry abstract fork sites) and functions.
func IsPointerLike(t Type) bool {
	switch t := t.(type) {
	case *Pointer, *Func:
		return true
	case *Basic:
		return t.Name == "thread_t"
	}
	return false
}

// Deref returns the pointee of a pointer type, or nil.
func Deref(t Type) Type {
	if p, ok := t.(*Pointer); ok {
		return p.Elem
	}
	return nil
}

// Underlying struct type of t, looking through one pointer level; nil when
// t is not struct-shaped.
func StructOf(t Type) *Struct {
	switch t := t.(type) {
	case *Struct:
		return t
	case *Pointer:
		if s, ok := t.Elem.(*Struct); ok {
			return s
		}
	}
	return nil
}

// NumFields returns the field count for struct (or array-of-struct) types
// and 0 otherwise. Arrays report their element's field count so an array of
// structs still gets field sub-objects collapsed onto the monolithic array.
func NumFields(t Type) int {
	switch t := t.(type) {
	case *Struct:
		return len(t.Fields)
	case *Array:
		return NumFields(t.Elem)
	}
	return 0
}

// ContainsArray reports whether t is or contains an array (such objects are
// never strong-update targets).
func ContainsArray(t Type) bool {
	switch t := t.(type) {
	case *Array:
		return true
	case *Struct:
		for _, f := range t.Fields {
			if ContainsArray(f.Type) {
				return true
			}
		}
	}
	return false
}

package types_test

import (
	"testing"

	"repro/internal/frontend/types"
)

func TestBasicEquality(t *testing.T) {
	if !types.Int.Equal(types.Int) || types.Int.Equal(types.Void) {
		t.Error("basic equality")
	}
	if types.Int.String() != "int" || types.Lock.String() != "lock_t" {
		t.Error("basic names")
	}
}

func TestPointerEquality(t *testing.T) {
	p1 := types.PointerTo(types.Int)
	p2 := types.PointerTo(types.Int)
	p3 := types.PointerTo(types.Void)
	if !p1.Equal(p2) || p1.Equal(p3) || p1.Equal(types.Int) {
		t.Error("pointer equality")
	}
	if p1.String() != "int*" {
		t.Errorf("pointer string: %s", p1)
	}
}

func TestStructNominal(t *testing.T) {
	a := &types.Struct{Name: "A", Fields: []types.Field{{Name: "x", Type: types.Int}}}
	a2 := &types.Struct{Name: "A"}
	b := &types.Struct{Name: "B"}
	if !a.Equal(a2) || a.Equal(b) {
		t.Error("structs are nominal")
	}
}

func TestArrayEquality(t *testing.T) {
	a := &types.Array{Elem: types.Int, Len: 4}
	b := &types.Array{Elem: types.Int, Len: 4}
	c := &types.Array{Elem: types.Int, Len: 8}
	if !a.Equal(b) || a.Equal(c) {
		t.Error("array equality")
	}
	if a.String() != "int[4]" {
		t.Errorf("array string: %s", a)
	}
}

func TestFuncEquality(t *testing.T) {
	f1 := &types.Func{Params: []types.Type{types.Int}, Ret: types.Void}
	f2 := &types.Func{Params: []types.Type{types.Int}, Ret: types.Void}
	f3 := &types.Func{Params: []types.Type{types.Int, types.Int}, Ret: types.Void}
	if !f1.Equal(f2) || f1.Equal(f3) {
		t.Error("func equality")
	}
}

func TestIsPointerLike(t *testing.T) {
	cases := []struct {
		t    types.Type
		want bool
	}{
		{types.Int, false},
		{types.Thread, true},
		{types.Lock, false},
		{types.PointerTo(types.Int), true},
		{&types.Func{Ret: types.Void}, true},
		{&types.Array{Elem: types.Int, Len: 2}, false},
	}
	for _, c := range cases {
		if got := types.IsPointerLike(c.t); got != c.want {
			t.Errorf("IsPointerLike(%s) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestDerefAndStructOf(t *testing.T) {
	s := &types.Struct{Name: "S"}
	ps := types.PointerTo(s)
	if types.Deref(ps) != types.Type(s) {
		t.Error("Deref")
	}
	if types.Deref(types.Int) != nil {
		t.Error("Deref of non-pointer")
	}
	if types.StructOf(ps) != s || types.StructOf(s) != s || types.StructOf(types.Int) != nil {
		t.Error("StructOf")
	}
}

func TestNumFields(t *testing.T) {
	s := &types.Struct{Name: "S", Fields: []types.Field{
		{Name: "a", Type: types.Int}, {Name: "b", Type: types.Int}}}
	if types.NumFields(s) != 2 {
		t.Error("struct fields")
	}
	arr := &types.Array{Elem: s, Len: 4}
	if types.NumFields(arr) != 2 {
		t.Error("array of structs reports element fields")
	}
	if types.NumFields(types.Int) != 0 {
		t.Error("scalar fields")
	}
}

func TestContainsArray(t *testing.T) {
	inner := &types.Struct{Name: "I", Fields: []types.Field{
		{Name: "buf", Type: &types.Array{Elem: types.Int, Len: 8}}}}
	if !types.ContainsArray(inner) {
		t.Error("struct with array field")
	}
	if types.ContainsArray(types.Int) {
		t.Error("int has no array")
	}
	if !types.ContainsArray(&types.Array{Elem: types.Int, Len: 1}) {
		t.Error("array is array")
	}
}

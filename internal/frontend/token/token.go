// Package token defines the lexical tokens of MiniC, the C subset used as
// input language for the analyses (the stand-in for LLVM bitcode described
// in DESIGN.md).
package token

import "fmt"

// Kind enumerates token kinds.
type Kind int

const (
	ILLEGAL Kind = iota
	EOF

	IDENT  // foo
	INT    // 123
	STRING // "abc" (accepted and ignored by the builder)

	// Operators and delimiters.
	ASSIGN   // =
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	AMP      // &
	NOT      // !
	EQ       // ==
	NEQ      // !=
	LT       // <
	GT       // >
	LE       // <=
	GE       // >=
	LAND     // &&
	LOR      // ||
	INC      // ++
	DEC      // --
	ARROW    // ->
	DOT      // .
	COMMA    // ,
	SEMI     // ;
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]

	// Keywords.
	KwInt
	KwVoid
	KwChar
	KwStruct
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwNull
	KwMalloc
	KwFree
	KwSpawn
	KwJoin
	KwLock
	KwUnlock
	KwThreadT
	KwLockT
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", INT: "INT", STRING: "STRING",
	ASSIGN: "=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	AMP: "&", NOT: "!", EQ: "==", NEQ: "!=", LT: "<", GT: ">", LE: "<=",
	GE: ">=", LAND: "&&", LOR: "||", INC: "++", DEC: "--", ARROW: "->",
	DOT: ".", COMMA: ",", SEMI: ";", LPAREN: "(", RPAREN: ")", LBRACE: "{",
	RBRACE: "}", LBRACKET: "[", RBRACKET: "]",
	KwInt: "int", KwVoid: "void", KwChar: "char", KwStruct: "struct",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for",
	KwReturn: "return", KwBreak: "break", KwContinue: "continue",
	KwNull: "NULL", KwMalloc: "malloc", KwFree: "free", KwSpawn: "spawn", KwJoin: "join",
	KwLock: "lock", KwUnlock: "unlock", KwThreadT: "thread_t", KwLockT: "lock_t",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps identifier spellings to keyword kinds.
var Keywords = map[string]Kind{
	"int": KwInt, "void": KwVoid, "char": KwChar, "struct": KwStruct,
	"if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
	"NULL": KwNull, "null": KwNull, "malloc": KwMalloc, "free": KwFree, "spawn": KwSpawn,
	"join": KwJoin, "lock": KwLock, "unlock": KwUnlock,
	"thread_t": KwThreadT, "lock_t": KwLockT,
}

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its literal text and position.
type Token struct {
	Kind Kind
	Lit  string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, STRING:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// Package ast defines the abstract syntax tree produced by the MiniC parser.
package ast

import (
	"repro/internal/frontend/token"
	"repro/internal/frontend/types"
)

// Node is the root interface of all AST nodes.
type Node interface {
	Pos() token.Pos
}

// ---- Declarations ----

// File is a parsed translation unit.
type File struct {
	Name    string // source name, for diagnostics
	Structs []*StructDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// StructDecl declares a struct type.
type StructDecl struct {
	P    token.Pos
	Name string
	Type *types.Struct
}

func (d *StructDecl) Pos() token.Pos { return d.P }

// VarDecl declares a variable (global or local). Init is optional.
type VarDecl struct {
	P    token.Pos
	Name string
	Type types.Type
	Init Expr
}

func (d *VarDecl) Pos() token.Pos { return d.P }

// Param is a function parameter.
type Param struct {
	P    token.Pos
	Name string
	Type types.Type
}

// FuncDecl declares (Body == nil) or defines a function.
type FuncDecl struct {
	P      token.Pos
	Name   string
	Params []*Param
	Ret    types.Type
	Body   *BlockStmt
}

func (d *FuncDecl) Pos() token.Pos { return d.P }

// Signature returns the function's type.
func (d *FuncDecl) Signature() *types.Func {
	ps := make([]types.Type, len(d.Params))
	for i, p := range d.Params {
		ps[i] = p.Type
	}
	return &types.Func{Params: ps, Ret: d.Ret}
}

// ---- Statements ----

// Stmt is implemented by all statements.
type Stmt interface {
	Node
	stmtNode()
}

// DeclStmt is a local variable declaration.
type DeclStmt struct {
	Decl *VarDecl
}

func (s *DeclStmt) Pos() token.Pos { return s.Decl.P }
func (s *DeclStmt) stmtNode()      {}

// AssignStmt is lhs = rhs.
type AssignStmt struct {
	P   token.Pos
	LHS Expr
	RHS Expr
}

func (s *AssignStmt) Pos() token.Pos { return s.P }
func (s *AssignStmt) stmtNode()      {}

// ExprStmt is an expression evaluated for effect (typically a call).
type ExprStmt struct {
	P token.Pos
	X Expr
}

func (s *ExprStmt) Pos() token.Pos { return s.P }
func (s *ExprStmt) stmtNode()      {}

// IfStmt is if (Cond) Then [else Else].
type IfStmt struct {
	P    token.Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

func (s *IfStmt) Pos() token.Pos { return s.P }
func (s *IfStmt) stmtNode()      {}

// WhileStmt is while (Cond) Body.
type WhileStmt struct {
	P    token.Pos
	Cond Expr
	Body Stmt
}

func (s *WhileStmt) Pos() token.Pos { return s.P }
func (s *WhileStmt) stmtNode()      {}

// ForStmt is for (Init; Cond; Post) Body; any part may be nil.
type ForStmt struct {
	P    token.Pos
	Init Stmt // AssignStmt or DeclStmt or nil
	Cond Expr
	Post Stmt // AssignStmt or ExprStmt or nil
	Body Stmt
}

func (s *ForStmt) Pos() token.Pos { return s.P }
func (s *ForStmt) stmtNode()      {}

// ReturnStmt is return [X].
type ReturnStmt struct {
	P token.Pos
	X Expr // may be nil
}

func (s *ReturnStmt) Pos() token.Pos { return s.P }
func (s *ReturnStmt) stmtNode()      {}

// BreakStmt is break.
type BreakStmt struct{ P token.Pos }

func (s *BreakStmt) Pos() token.Pos { return s.P }
func (s *BreakStmt) stmtNode()      {}

// ContinueStmt is continue.
type ContinueStmt struct{ P token.Pos }

func (s *ContinueStmt) Pos() token.Pos { return s.P }
func (s *ContinueStmt) stmtNode()      {}

// BlockStmt is { Stmts... }.
type BlockStmt struct {
	P     token.Pos
	Stmts []Stmt
}

func (s *BlockStmt) Pos() token.Pos { return s.P }
func (s *BlockStmt) stmtNode()      {}

// FreeStmt is free(X) — deallocate a heap object.
type FreeStmt struct {
	P token.Pos
	X Expr
}

func (s *FreeStmt) Pos() token.Pos { return s.P }
func (s *FreeStmt) stmtNode()      {}

// JoinStmt is join(Handle) — pthread_join.
type JoinStmt struct {
	P      token.Pos
	Handle Expr
}

func (s *JoinStmt) Pos() token.Pos { return s.P }
func (s *JoinStmt) stmtNode()      {}

// LockStmt is lock(Ptr) — pthread_mutex_lock.
type LockStmt struct {
	P   token.Pos
	Ptr Expr
}

func (s *LockStmt) Pos() token.Pos { return s.P }
func (s *LockStmt) stmtNode()      {}

// UnlockStmt is unlock(Ptr) — pthread_mutex_unlock.
type UnlockStmt struct {
	P   token.Pos
	Ptr Expr
}

func (s *UnlockStmt) Pos() token.Pos { return s.P }
func (s *UnlockStmt) stmtNode()      {}

// ---- Expressions ----

// Expr is implemented by all expressions.
type Expr interface {
	Node
	exprNode()
}

// Ident is a variable or function reference.
type Ident struct {
	P    token.Pos
	Name string
}

func (e *Ident) Pos() token.Pos { return e.P }
func (e *Ident) exprNode()      {}

// IntLit is an integer literal.
type IntLit struct {
	P     token.Pos
	Value int64
}

func (e *IntLit) Pos() token.Pos { return e.P }
func (e *IntLit) exprNode()      {}

// StringLit is a string literal (its object identity is ignored by the
// analyses; it behaves as an opaque non-pointer value).
type StringLit struct {
	P     token.Pos
	Value string
}

func (e *StringLit) Pos() token.Pos { return e.P }
func (e *StringLit) exprNode()      {}

// NullLit is NULL.
type NullLit struct{ P token.Pos }

func (e *NullLit) Pos() token.Pos { return e.P }
func (e *NullLit) exprNode()      {}

// Unary is OP X for OP in * & - !.
type Unary struct {
	P  token.Pos
	Op token.Kind
	X  Expr
}

func (e *Unary) Pos() token.Pos { return e.P }
func (e *Unary) exprNode()      {}

// Binary is X OP Y for arithmetic/comparison/logical operators.
type Binary struct {
	P    token.Pos
	Op   token.Kind
	X, Y Expr
}

func (e *Binary) Pos() token.Pos { return e.P }
func (e *Binary) exprNode()      {}

// Index is X[I].
type Index struct {
	P token.Pos
	X Expr
	I Expr
}

func (e *Index) Pos() token.Pos { return e.P }
func (e *Index) exprNode()      {}

// FieldSel is X.Name (Arrow=false) or X->Name (Arrow=true).
type FieldSel struct {
	P     token.Pos
	X     Expr
	Name  string
	Arrow bool
}

func (e *FieldSel) Pos() token.Pos { return e.P }
func (e *FieldSel) exprNode()      {}

// CallExpr is Fun(Args...); Fun may be an Ident (direct or function-pointer
// variable) or an arbitrary pointer expression.
type CallExpr struct {
	P    token.Pos
	Fun  Expr
	Args []Expr
}

func (e *CallExpr) Pos() token.Pos { return e.P }
func (e *CallExpr) exprNode()      {}

// MallocExpr is malloc(): a fresh heap allocation site.
type MallocExpr struct {
	P token.Pos
}

func (e *MallocExpr) Pos() token.Pos { return e.P }
func (e *MallocExpr) exprNode()      {}

// SpawnExpr is spawn(Routine[, Arg]): pthread_create returning a thread_t.
type SpawnExpr struct {
	P       token.Pos
	Routine Expr
	Arg     Expr // may be nil
}

func (e *SpawnExpr) Pos() token.Pos { return e.P }
func (e *SpawnExpr) exprNode()      {}

package lexer_test

import (
	"testing"

	"repro/internal/frontend/lexer"
	"repro/internal/frontend/token"
)

// kinds tokenizes src and returns the token kinds (without EOF).
func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := lexer.All(src)
	if len(errs) > 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	out := make([]token.Kind, 0, len(toks)-1)
	for _, tok := range toks[:len(toks)-1] {
		out = append(out, tok.Kind)
	}
	return out
}

func eq(a, b []token.Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestKeywordsAndIdents(t *testing.T) {
	got := kinds(t, "int foo while thread_t lock_t spawn join lock unlock NULL malloc")
	want := []token.Kind{token.KwInt, token.IDENT, token.KwWhile, token.KwThreadT,
		token.KwLockT, token.KwSpawn, token.KwJoin, token.KwLock, token.KwUnlock,
		token.KwNull, token.KwMalloc}
	if !eq(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestOperators(t *testing.T) {
	got := kinds(t, "== != <= >= && || ++ -- -> = < > & ! + - * / % .")
	want := []token.Kind{token.EQ, token.NEQ, token.LE, token.GE, token.LAND,
		token.LOR, token.INC, token.DEC, token.ARROW, token.ASSIGN, token.LT,
		token.GT, token.AMP, token.NOT, token.PLUS, token.MINUS, token.STAR,
		token.SLASH, token.PERCENT, token.DOT}
	if !eq(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestDelimiters(t *testing.T) {
	got := kinds(t, "( ) { } [ ] , ;")
	want := []token.Kind{token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE,
		token.LBRACKET, token.RBRACKET, token.COMMA, token.SEMI}
	if !eq(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a // line comment\n b /* block\ncomment */ c")
	want := []token.Kind{token.IDENT, token.IDENT, token.IDENT}
	if !eq(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestNumbersAndStrings(t *testing.T) {
	toks, errs := lexer.All(`123 "hello" 0`)
	if len(errs) > 0 {
		t.Fatalf("errs: %v", errs)
	}
	if toks[0].Kind != token.INT || toks[0].Lit != "123" {
		t.Errorf("int literal: %v", toks[0])
	}
	if toks[1].Kind != token.STRING || toks[1].Lit != "hello" {
		t.Errorf("string literal: %v", toks[1])
	}
	if toks[2].Kind != token.INT || toks[2].Lit != "0" {
		t.Errorf("zero literal: %v", toks[2])
	}
}

func TestPositions(t *testing.T) {
	toks, _ := lexer.All("a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestUnterminatedString(t *testing.T) {
	_, errs := lexer.All(`"oops`)
	if len(errs) == 0 {
		t.Error("expected error for unterminated string")
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, errs := lexer.All("/* never closed")
	if len(errs) == 0 {
		t.Error("expected error for unterminated comment")
	}
}

func TestIllegalCharacter(t *testing.T) {
	toks, errs := lexer.All("a $ b")
	if len(errs) == 0 {
		t.Error("expected error for $")
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == token.ILLEGAL {
			found = true
		}
	}
	if !found {
		t.Error("expected ILLEGAL token")
	}
}

func TestEOFIsLast(t *testing.T) {
	toks, _ := lexer.All("x")
	if toks[len(toks)-1].Kind != token.EOF {
		t.Error("last token must be EOF")
	}
	// Next after EOF keeps returning EOF.
	l := lexer.New("")
	for i := 0; i < 3; i++ {
		if l.Next().Kind != token.EOF {
			t.Error("Next past EOF must return EOF")
		}
	}
}

package lexer_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/frontend/lexer"
	"repro/internal/frontend/token"
)

// FuzzLex: the lexer terminates on arbitrary input, never panics, and
// every token carries a position inside the source.
func FuzzLex(f *testing.F) {
	f.Add("int main() { return 0; }")
	f.Add("spawn worker(&x); lock(m); /* unterminated")
	f.Add("\"string with \\n escape\" 0x1234 'c'")
	f.Add("\x00\xff\xfe")
	paths, _ := filepath.Glob(filepath.Join("..", "..", "..", "testdata", "*.mc"))
	for _, p := range paths {
		if src, err := os.ReadFile(p); err == nil {
			f.Add(string(src))
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		l := lexer.New(src)
		// Every Next call consumes at least one byte (or reports an error
		// and skips one), so len(src)+1 pops bound any terminating run.
		for i := 0; i <= len(src); i++ {
			if l.Next().Kind == token.EOF {
				return
			}
		}
		t.Fatalf("lexer did not reach EOF within %d tokens", len(src)+1)
	})
}

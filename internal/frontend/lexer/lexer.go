// Package lexer tokenizes MiniC source text.
package lexer

import (
	"fmt"

	"repro/internal/frontend/token"
)

// Lexer scans MiniC source into tokens. Create one with New and call Next
// until an EOF token is returned.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns lexical errors accumulated so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// skipSpaceAndComments consumes whitespace, // line comments and /* */ block
// comments.
func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()

	switch {
	case isLetter(c):
		start := l.off - 1
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.off]
		if kw, ok := token.Keywords[lit]; ok {
			return token.Token{Kind: kw, Lit: lit, Pos: pos}
		}
		return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}

	case isDigit(c):
		start := l.off - 1
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: pos}

	case c == '"':
		start := l.off
		for l.off < len(l.src) && l.peek() != '"' && l.peek() != '\n' {
			if l.peek() == '\\' {
				l.advance()
			}
			if l.off < len(l.src) {
				l.advance()
			}
		}
		lit := l.src[start:l.off]
		if l.off < len(l.src) && l.peek() == '"' {
			l.advance()
		} else {
			l.errorf(pos, "unterminated string literal")
		}
		return token.Token{Kind: token.STRING, Lit: lit, Pos: pos}
	}

	two := func(next byte, twoKind, oneKind token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: twoKind, Pos: pos}
		}
		return token.Token{Kind: oneKind, Pos: pos}
	}

	switch c {
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '<':
		return two('=', token.LE, token.LT)
	case '>':
		return two('=', token.GE, token.GT)
	case '&':
		return two('&', token.LAND, token.AMP)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.LOR, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q", c)
		return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
	case '+':
		return two('+', token.INC, token.PLUS)
	case '-':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.ARROW, Pos: pos}
		}
		return two('-', token.DEC, token.MINUS)
	case '*':
		return token.Token{Kind: token.STAR, Pos: pos}
	case '/':
		return token.Token{Kind: token.SLASH, Pos: pos}
	case '%':
		return token.Token{Kind: token.PERCENT, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACKET, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACKET, Pos: pos}
	}

	l.errorf(pos, "unexpected character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

// All tokenizes the whole input, returning the tokens ending with EOF.
func All(src string) ([]token.Token, []error) {
	l := New(src)
	// MiniC averages a token per ~4 bytes; pre-sizing avoids the repeated
	// growth copies of a value-struct slice on large generated sources.
	out := make([]token.Token, 0, len(src)/4+16)
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out, l.Errors()
		}
	}
}

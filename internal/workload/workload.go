// Package workload generates the benchmark suite of the paper's Table 1 as
// deterministic synthetic MiniC programs. We do not have the Phoenix-2.0,
// Parsec-3.0 and open-source C sources (or a C frontend), so each program
// reproduces the concurrency skeleton and pointer-workload profile that the
// paper attributes to its namesake:
//
//	word_count    master-slave with symmetric fork/join loops (Figure 11)
//	kmeans        iterative master-slave (fork/join loops inside a loop)
//	radiosity     task queue guarded by locks (Figure 13)
//	automount     lock-heavy daemon over a shared table
//	ferret        pipeline of stages with queues and thread-local work
//	bodytrack     pointer-dense data-parallel kernels
//	httpd_server  accept-loop thread pool, post-join master phase
//	mt_daapd      threads + locks + heavy thread-local pointer work
//	raytrace      large, deep call graph, unsynchronized shared writes
//	x264          largest: pipeline + pools + several lock groups
//
// Sizes are scaled down uniformly from the paper's line counts so the suite
// runs in seconds; relative program sizes (and therefore the relative cost
// ordering) are preserved. All generation is deterministic: the same name
// and scale always produce byte-identical source.
package workload

import (
	"bytes"
	"fmt"
)

// Spec describes one benchmark.
type Spec struct {
	Name        string
	Description string
	// PaperLOC is the size reported in the paper's Table 1.
	PaperLOC int
	gen      func(g *gctx)
}

// Suite is the paper's Table 1 benchmark list, in its order.
var Suite = []Spec{
	{"word_count", "Word counter based on map-reduce", 6330, genWordCount},
	{"kmeans", "Iterative clustering of 3-D points", 6008, genKmeans},
	{"radiosity", "Graphics", 12781, genRadiosity},
	{"automount", "Manage autofs mount points", 13170, genAutomount},
	{"ferret", "Content similarity search server", 15735, genFerret},
	{"bodytrack", "Body tracking of a person", 19063, genBodytrack},
	{"httpd_server", "Http server", 52616, genHttpd},
	{"mt_daapd", "Multi-threaded DAAP Daemon", 57102, genMtDaapd},
	{"raytrace", "Real-time raytracing", 84373, genRaytrace},
	{"x264", "Media processing", 113481, genX264},
}

// ByName returns the spec for a benchmark name.
func ByName(name string) (Spec, bool) {
	for _, s := range Suite {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Generate produces the MiniC source for the named benchmark at the given
// scale (scale 1 is the smallest; sizes grow roughly linearly with it).
func Generate(name string, scale int) (string, error) {
	spec, ok := ByName(name)
	if !ok {
		return "", fmt.Errorf("unknown benchmark %q", name)
	}
	return GenerateSpec(spec, scale), nil
}

// GenerateSpec produces source for an explicit spec.
func GenerateSpec(spec Spec, scale int) string {
	if scale < 1 {
		scale = 1
	}
	g := &gctx{seed: 0x9E3779B97F4A7C15, scale: scale, unit: spec.PaperLOC / 6000}
	if g.unit < 1 {
		g.unit = 1
	}
	g.p("// %s — synthetic stand-in for %s (%s), paper LOC %d, scale %d\n",
		spec.Name, spec.Name, spec.Description, spec.PaperLOC, scale)
	spec.gen(g)
	return g.buf.String()
}

// LOC counts source lines (matching the paper's wc-style counting).
func LOC(src string) int {
	n := 0
	for _, c := range src {
		if c == '\n' {
			n++
		}
	}
	return n
}

// ---- generation context ----

type gctx struct {
	buf   bytes.Buffer
	seed  uint64
	scale int
	// unit scales internal counts with the paper's relative program size.
	unit int
	// nPost counts post-processing functions emitted by emitPostFuncs.
	nPost int
}

func (g *gctx) p(format string, args ...any) {
	fmt.Fprintf(&g.buf, format, args...)
}

// rnd returns a deterministic pseudo-random int in [0, n).
func (g *gctx) rnd(n int) int {
	if n <= 0 {
		return 0
	}
	g.seed = g.seed*6364136223846793005 + 1442695040888963407
	return int((g.seed >> 33) % uint64(n))
}

// n scales a base count by the benchmark unit and the user scale.
func (g *gctx) n(base int) int {
	v := base * g.unit * g.scale
	if v < 1 {
		return 1
	}
	return v
}

// ---- shared fabric emitters ----

// fabric describes the pointer workload of a benchmark.
type fabric struct {
	globals  int // int targets g<i>
	ptrs     int // global pointer cells p<i>
	structs  int // struct types + instances
	kernels  int // shared pointer-kernel functions
	localFns int // thread-local pointer work functions
	locks    int // global locks (lockedKernels use them)
	depth    int // call-chain depth under each kernel
	filler   int // arithmetic statements per function
}

// emitDecls writes globals, pointers, structs and locks.
func (g *gctx) emitDecls(f fabric) {
	for i := 0; i < f.globals; i++ {
		g.p("int g%d;\n", i)
	}
	for i := 0; i < f.ptrs; i++ {
		g.p("int *p%d;\n", i)
	}
	for i := 0; i < f.structs; i++ {
		g.p("struct S%d { int *fa; int *fb; int val; };\n", i)
		g.p("struct S%d s%d;\n", i, i)
		g.p("struct S%d *sp%d;\n", i, i)
	}
	for i := 0; i < f.locks; i++ {
		g.p("lock_t lk%d;\n", i)
	}
	g.p("int results[16];\n")
	g.p("int *shared_out;\n")
	g.p("int *hub;\n")
}

// emitFiller writes side-effect-free integer churn (program points).
func (g *gctx) emitFiller(f fabric, name string) {
	g.p("\tint %s_acc;\n", name)
	g.p("\t%s_acc = 0;\n", name)
	for i := 0; i < f.filler; i++ {
		g.p("\t%s_acc = %s_acc * %d + %d;\n", name, name, g.rnd(7)+1, g.rnd(100))
	}
}

// emitKernels writes shared pointer-manipulation functions kernel<i>, each
// chained to a depth of callees, plus lock-protected variants.
func (g *gctx) emitKernels(f fabric) {
	// Leaf helpers.
	for i := 0; i < f.kernels; i++ {
		for d := f.depth; d >= 1; d-- {
			g.p("void kern%d_d%d(void) {\n", i, d)
			a, b := g.rnd(f.ptrs), g.rnd(f.ptrs)
			c := g.rnd(f.globals)
			g.p("\tp%d = &g%d;\n", a, c)
			g.p("\t*p%d = p%d;\n", g.rnd(f.ptrs), g.rnd(f.ptrs))
			g.p("\tint *t;\n")
			g.p("\tt = *(&p%d);\n", b)
			if f.structs > 0 {
				si := g.rnd(f.structs)
				g.p("\tsp%d = &s%d;\n", si, si)
				g.p("\tsp%d->fa = &g%d;\n", si, g.rnd(f.globals))
				g.p("\tt = sp%d->fa;\n", si)
			}
			g.emitFiller(f, fmt.Sprintf("k%dd%d", i, d))
			if d < f.depth {
				g.p("\tkern%d_d%d();\n", i, d+1)
			}
			g.p("}\n")
		}
		g.p("void kernel%d(void) {\n", i)
		g.p("\tkern%d_d1();\n", i)
		g.p("\t*p%d = &g%d;\n", g.rnd(f.ptrs), g.rnd(f.globals))
		g.p("}\n")
	}
	// Locked kernels: critical sections over shared pointers. Sections are
	// grouped: all sections in a group share one lock and one cell, the way
	// real code guards each table or queue with a single mutex. Each
	// section writes the shared cell more than once and then reads it, so
	// its early stores are not span tails and its reads are not span heads
	// — the pattern the lock analysis (Definitions 4-6) filters, as in the
	// paper's radiosity task queue (Figure 13).
	for i := 0; i < f.locks; i++ {
		grp := i % lockGroups(f)
		cell := grp % f.ptrs
		g.p("void locked%d(void) {\n", i)
		g.p("\tlock(&lk%d);\n", grp)
		g.p("\t*p%d = &g%d;\n", cell, g.rnd(f.globals))
		g.p("\t*p%d = NULL;\n", cell)
		g.p("\t*p%d = &g%d;\n", cell, g.rnd(f.globals))
		g.p("\tint *v;\n")
		g.p("\tv = *p%d;\n", cell)
		g.p("\tv = *p%d;\n", cell)
		g.p("\t*p%d = v;\n", cell)
		g.p("\tunlock(&lk%d);\n", grp)
		g.p("}\n")
	}
}

// lockGroups is the number of distinct mutexes guarding the locked
// sections; sections map onto groups round-robin.
func lockGroups(f fabric) int {
	n := f.locks / 4
	if n < 1 {
		n = 1
	}
	return n
}

// emitPostFuncs writes master-only post-processing functions that load and
// store the shared pointer web heavily. They are called exclusively after
// all joins, so the interleaving analysis proves they cannot run in
// parallel with the slaves — the coarse PCG ablation cannot, which is what
// the paper's No-Interleaving configuration measures.
func (g *gctx) emitPostFuncs(f fabric, count int) int {
	for i := 0; i < count; i++ {
		g.p("void postproc%d(void) {\n", i)
		for j := 0; j < 18; j++ {
			a := g.rnd(f.ptrs)
			switch g.rnd(4) {
			case 0:
				g.p("\tp%d = &g%d;\n", a, g.rnd(f.globals))
			case 1:
				g.p("\t*p%d = &g%d;\n", a, g.rnd(f.globals))
			default:
				g.p("\tshared_out = *p%d;\n", a)
			}
		}
		if f.structs > 0 {
			si := g.rnd(f.structs)
			g.p("\ts%d.fb = *(&p%d);\n", si, g.rnd(f.ptrs))
			g.p("\tshared_out = s%d.fb;\n", si)
		}
		g.p("}\n")
	}
	g.nPost = count
	return count
}

// emitLocalFns writes functions doing heavy pointer work on address-taken
// locals (non-shared memory): the workload the paper's value-flow analysis
// prunes.
func (g *gctx) emitLocalFns(f fabric) {
	for i := 0; i < f.localFns; i++ {
		g.p("void localwork%d(void) {\n", i)
		g.p("\tint la; int lb; int lc;\n")
		g.p("\tint *lp; int *lq;\n")
		g.p("\tint lbuf[8];\n")
		g.p("\tlp = &la;\n")
		g.p("\t*lp = 1;\n")
		g.p("\tlq = &lb;\n")
		g.p("\t*lq = *lp;\n")
		g.p("\tlp = &lc;\n")
		g.p("\tlbuf[0] = *lq;\n")
		g.p("\tlbuf[1] = *lp;\n")
		for j := 0; j < f.filler/2+1; j++ {
			if g.rnd(2) == 0 {
				g.p("\t*lp = lbuf[%d] + %d;\n", g.rnd(8), g.rnd(50))
			} else {
				g.p("\tlbuf[%d] = *lq;\n", g.rnd(8))
			}
		}
		g.p("}\n")
	}
}

// emitWorkerBody writes the shared body of a slave routine: a mix of
// kernels, locked sections and local work.
func (g *gctx) emitWorkerBody(f fabric, kernCalls, localCalls, lockCalls int) {
	for i := 0; i < kernCalls; i++ {
		g.p("\tkernel%d();\n", g.rnd(f.kernels))
	}
	for i := 0; i < lockCalls && f.locks > 0; i++ {
		g.p("\tlocked%d();\n", g.rnd(f.locks))
	}
	for i := 0; i < localCalls && f.localFns > 0; i++ {
		g.p("\tlocalwork%d();\n", g.rnd(f.localFns))
	}
}

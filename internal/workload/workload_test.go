package workload_test

import (
	"strings"
	"testing"
	"time"

	fsam "repro"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestAllBenchmarksCompile parses, lowers and analyzes every generated
// benchmark at scale 1.
func TestAllBenchmarksCompile(t *testing.T) {
	for _, spec := range workload.Suite {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			src := workload.GenerateSpec(spec, 1)
			prog, err := pipeline.Compile(spec.Name+".mc", src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			a := fsam.AnalyzeProgram(prog, fsam.Config{})
			if a.Stats.Threads < 2 {
				t.Errorf("threads = %d, want >= 2", a.Stats.Threads)
			}
			if a.Stats.DefUseEdges == 0 {
				t.Error("no def-use edges")
			}
		})
	}
}

// TestDeterministic verifies byte-identical regeneration.
func TestDeterministic(t *testing.T) {
	for _, spec := range workload.Suite {
		a := workload.GenerateSpec(spec, 2)
		b := workload.GenerateSpec(spec, 2)
		if a != b {
			t.Errorf("%s: generation is not deterministic", spec.Name)
		}
	}
}

// TestRelativeSizes checks that generated sizes preserve the paper's
// ordering (monotone in PaperLOC).
func TestRelativeSizes(t *testing.T) {
	prev := 0
	prevName := ""
	for _, spec := range workload.Suite {
		loc := workload.LOC(workload.GenerateSpec(spec, 1))
		t.Logf("%-14s paper=%6d gen=%5d", spec.Name, spec.PaperLOC, loc)
		if spec.PaperLOC > 20000 && loc < prev && prev > 0 {
			t.Errorf("%s (gen %d) smaller than %s (gen %d) despite larger paper LOC",
				spec.Name, loc, prevName, prev)
		}
		prev, prevName = loc, spec.Name
	}
}

// TestScaleGrows verifies the scale knob grows programs.
func TestScaleGrows(t *testing.T) {
	s1 := workload.LOC(workload.GenerateSpec(workload.Suite[0], 1))
	s3 := workload.LOC(workload.GenerateSpec(workload.Suite[0], 3))
	if s3 <= s1 {
		t.Errorf("scale 3 LOC %d <= scale 1 LOC %d", s3, s1)
	}
}

// TestUnknownBenchmark pins the error path: fsamd surfaces this message
// verbatim as its 404 body, so both the wording and the quoted name are
// part of the contract.
func TestUnknownBenchmark(t *testing.T) {
	_, err := workload.Generate("nope", 1)
	if err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
	if got := err.Error(); !strings.Contains(got, `unknown benchmark "nope"`) {
		t.Errorf("error %q does not name the unknown benchmark", got)
	}
	// A known name at any positive scale must not error.
	if _, err := workload.Generate("word_count", 1); err != nil {
		t.Errorf("known benchmark errored: %v", err)
	}
}

// TestNonSparseRunsOnSmallest sanity-checks the baseline on word_count.
func TestNonSparseRunsOnSmallest(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	src, _ := workload.Generate("word_count", 1)
	prog, err := pipeline.Compile("word_count.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	b := fsam.AnalyzeProgramNonSparse(prog, 60*time.Second)
	if b.OOT {
		t.Fatal("NonSparse OOT on smallest benchmark")
	}
}

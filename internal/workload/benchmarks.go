package workload

import "fmt"

// fab derives a benchmark's fabric from its unit size.
func (g *gctx) fab(locks int, depth int) fabric {
	u := g.unit * g.scale
	return fabric{
		globals:  6 * u,
		ptrs:     6 * u,
		structs:  2 * u,
		kernels:  3 * u,
		localFns: 2 * u,
		locks:    locks,
		depth:    depth,
		filler:   6,
	}
}

// emitPost writes a sequential master phase (after all joins): calls to
// the master-only post-processing functions plus inline strong updates.
// The interleaving analysis proves none of it can run in parallel with the
// slaves.
func (g *gctx) emitPost(f fabric, n int) {
	for i := 0; i < g.nPost; i++ {
		g.p("\tpostproc%d();\n", i)
	}
	for i := 0; i < n; i++ {
		a := g.rnd(f.ptrs)
		g.p("\tp%d = &g%d;\n", a, g.rnd(f.globals))
		g.p("\t*p%d = &g%d;\n", a, g.rnd(f.globals))
		g.p("\tshared_out = *(&p%d);\n", g.rnd(f.ptrs))
	}
}

// emitPoolMain writes the canonical master-slave main: a fork loop, an
// optional mid-section, a join loop, and a post phase.
func (g *gctx) emitPoolMain(f fabric, worker string, nThreads int, post int) {
	g.p("int main() {\n")
	g.p("\tthread_t tids[%d];\n", nThreads)
	g.p("\tint i;\n")
	g.p("\tp0 = &g0;\n")
	g.p("\t*p0 = &g1;\n")
	g.p("\tfor (i = 0; i < %d; i++) {\n", nThreads)
	g.p("\t\ttids[i] = spawn(%s, NULL);\n", worker)
	g.p("\t}\n")
	g.p("\tfor (i = 0; i < %d; i++) {\n", nThreads)
	g.p("\t\tjoin(tids[i]);\n")
	g.p("\t}\n")
	g.emitPost(f, post)
	g.p("\treturn 0;\n")
	g.p("}\n")
}

// ---- word_count ----

func genWordCount(g *gctx) {
	f := g.fab(2, 2)
	g.emitDecls(f)
	g.emitKernels(f)
	g.emitLocalFns(f)
	g.emitPostFuncs(f, g.unit*g.scale+2)
	g.p("void wordcount_map(void *arg) {\n")
	g.emitWorkerBody(f, 3, 2, 2)
	g.p("\tlock(&lk0);\n")
	g.p("\tresults[0] = 1;\n")
	g.p("\tunlock(&lk0);\n")
	g.p("}\n")
	g.emitPoolMain(f, "wordcount_map", 8, 4)
}

// ---- kmeans ----

func genKmeans(g *gctx) {
	f := g.fab(2, 2)
	g.emitDecls(f)
	g.emitKernels(f)
	g.emitLocalFns(f)
	g.emitPostFuncs(f, g.unit*g.scale+2)
	g.p("void kmeans_worker(void *arg) {\n")
	g.emitWorkerBody(f, 3, 1, 2)
	g.p("}\n")
	g.p("int main() {\n")
	g.p("\tthread_t tids[8];\n")
	g.p("\tint i; int iter;\n")
	g.p("\tp0 = &g0;\n")
	g.p("\tfor (iter = 0; iter < 3; iter++) {\n")
	g.p("\t\tfor (i = 0; i < 8; i++) {\n")
	g.p("\t\t\ttids[i] = spawn(kmeans_worker, NULL);\n")
	g.p("\t\t}\n")
	g.p("\t\tfor (i = 0; i < 8; i++) {\n")
	g.p("\t\t\tjoin(tids[i]);\n")
	g.p("\t\t}\n")
	// Sequential centroid update between rounds: master-only pointer
	// work that the interleaving analysis proves serial.
	g.p("\t\tp1 = &g1;\n")
	g.p("\t\t*p1 = &g2;\n")
	for i := 0; i < g.nPost/2; i++ {
		g.p("\t\tpostproc%d();\n", i)
	}
	g.p("\t}\n")
	g.emitPost(f, 4)
	g.p("\treturn 0;\n")
	g.p("}\n")
}

// ---- radiosity (task queue, Figure 13) ----

func genRadiosity(g *gctx) {
	f := g.fab(3*g.unit*g.scale+3, 2)
	f.kernels = g.unit*g.scale + 1
	g.emitDecls(f)
	g.p("struct Task { int *data; struct Task *next; };\n")
	g.p("struct TQueue { struct Task *head; struct Task *tail; lock_t qlock; };\n")
	g.p("struct TQueue task_queue;\n")
	g.emitKernels(f)
	g.emitLocalFns(f)
	g.emitPostFuncs(f, g.unit*g.scale/2+1)

	g.p("void enqueue_task(struct Task *task) {\n")
	g.p("\tlock(&task_queue.qlock);\n")
	g.p("\tif (task_queue.tail == NULL) {\n")
	g.p("\t\ttask_queue.tail = task;\n")
	g.p("\t} else {\n")
	g.p("\t\ttask_queue.head = task;\n")
	g.p("\t}\n")
	g.p("\tunlock(&task_queue.qlock);\n")
	g.p("}\n")

	g.p("struct Task *dequeue_task() {\n")
	g.p("\tstruct Task *t;\n")
	g.p("\tlock(&task_queue.qlock);\n")
	g.p("\tt = task_queue.tail;\n")
	g.p("\ttask_queue.tail = NULL;\n")
	g.p("\ttask_queue.tail = t->next;\n")
	g.p("\tunlock(&task_queue.qlock);\n")
	g.p("\treturn t;\n")
	g.p("}\n")

	nQOps := 2*g.unit*g.scale + 2
	for i := 0; i < nQOps; i++ {
		g.p("void queue_op%d(void) {\n", i)
		g.p("\tlock(&task_queue.qlock);\n")
		g.p("\ttask_queue.tail = NULL;\n")
		g.p("\ttask_queue.tail = task_queue.head;\n")
		g.p("\tstruct Task *qt;\n")
		g.p("\tqt = task_queue.tail;\n")
		g.p("\ttask_queue.head = qt;\n")
		g.p("\tunlock(&task_queue.qlock);\n")
		g.p("}\n")
	}

	g.p("void radiosity_worker(void *arg) {\n")
	g.p("\tint iter;\n")
	g.p("\tfor (iter = 0; iter < 4; iter++) {\n")
	g.p("\t\tstruct Task *t;\n")
	g.p("\t\tt = dequeue_task();\n")
	g.p("\t\tt->data = &g0;\n")
	g.p("\t}\n")
	for i := 0; i < nQOps; i++ {
		g.p("\tqueue_op%d();\n", i)
	}
	g.emitWorkerBody(f, 2, 1, 2*g.unit*g.scale)
	g.p("}\n")

	g.p("int main() {\n")
	g.p("\tthread_t tids[8];\n")
	g.p("\tint i;\n")
	g.p("\tfor (i = 0; i < 4; i++) {\n")
	g.p("\t\tstruct Task *nt;\n")
	g.p("\t\tnt = malloc();\n")
	g.p("\t\tnt->data = &g1;\n")
	g.p("\t\tenqueue_task(nt);\n")
	g.p("\t}\n")
	g.p("\tfor (i = 0; i < 8; i++) {\n")
	g.p("\t\ttids[i] = spawn(radiosity_worker, NULL);\n")
	g.p("\t}\n")
	g.p("\tfor (i = 0; i < 8; i++) {\n")
	g.p("\t\tjoin(tids[i]);\n")
	g.p("\t}\n")
	g.emitPost(f, 3)
	g.p("\treturn 0;\n")
	g.p("}\n")
}

// ---- automount (lock-heavy daemon) ----

func genAutomount(g *gctx) {
	f := g.fab(4*g.unit*g.scale+4, 2)
	f.kernels = g.unit*g.scale + 1
	g.emitDecls(f)
	g.p("struct Mount { int *path; int flags; };\n")
	g.p("struct Mount mtab[32];\n")
	g.emitKernels(f)
	g.emitLocalFns(f)
	g.emitPostFuncs(f, g.unit*g.scale/2+1)

	// All table operations share the table mutex lk0, the usual daemon
	// idiom; the lock analysis can then prune most cross-section edges.
	nOps := f.locks
	for i := 0; i < nOps; i++ {
		g.p("void mount_op%d(void) {\n", i)
		g.p("\tlock(&lk0);\n")
		g.p("\tmtab[%d].path = &g%d;\n", g.rnd(32), g.rnd(f.globals))
		g.p("\tmtab[%d].path = &g%d;\n", g.rnd(32), g.rnd(f.globals))
		g.p("\tint *mp;\n")
		g.p("\tmp = mtab[%d].path;\n", g.rnd(32))
		g.p("\tmp = mtab[%d].path;\n", g.rnd(32))
		g.p("\tunlock(&lk0);\n")
		g.p("}\n")
	}

	g.p("void automount_worker(void *arg) {\n")
	g.p("\tint round;\n")
	g.p("\tfor (round = 0; round < 3; round++) {\n")
	for i := 0; i < 8; i++ {
		g.p("\t\tmount_op%d();\n", g.rnd(nOps))
	}
	g.p("\t}\n")
	g.emitWorkerBody(f, 1, 2, 2*g.unit*g.scale)
	g.p("}\n")
	g.emitPoolMain(f, "automount_worker", 6, 3)
}

// ---- ferret (pipeline) ----

func genFerret(g *gctx) {
	f := g.fab(6, 2)
	g.emitDecls(f)
	g.p("struct PQueue { int *slot; lock_t plock; };\n")
	stages := []string{"load", "seg", "extract", "vec", "rank", "out"}
	for i := range stages {
		g.p("struct PQueue q%d;\n", i)
	}
	g.emitKernels(f)
	g.emitLocalFns(f)
	g.emitPostFuncs(f, g.unit*g.scale/2+1)

	for i, st := range stages {
		g.p("void stage_%s(void *arg) {\n", st)
		g.p("\tint it;\n")
		g.p("\tfor (it = 0; it < 4; it++) {\n")
		g.p("\t\tint *item;\n")
		g.p("\t\tlock(&q%d.plock);\n", i)
		g.p("\t\titem = q%d.slot;\n", i)
		g.p("\t\tq%d.slot = NULL;\n", i)
		g.p("\t\tunlock(&q%d.plock);\n", i)
		if i+1 < len(stages) {
			g.p("\t\tlock(&q%d.plock);\n", i+1)
			g.p("\t\tq%d.slot = item;\n", i+1)
			g.p("\t\tunlock(&q%d.plock);\n", i+1)
		} else {
			g.p("\t\tshared_out = item;\n")
		}
		g.p("\t}\n")
		g.emitWorkerBody(f, 1, 2, 0)
		g.p("}\n")
	}

	g.p("int main() {\n")
	g.p("\tthread_t ts[%d];\n", len(stages))
	g.p("\tint i;\n")
	g.p("\tlock(&q0.plock);\n")
	g.p("\tq0.slot = &g0;\n")
	g.p("\tunlock(&q0.plock);\n")
	for i, st := range stages {
		g.p("\tts[%d] = spawn(stage_%s, NULL);\n", i, st)
	}
	g.p("\tfor (i = 0; i < %d; i++) {\n", len(stages))
	g.p("\t\tjoin(ts[i]);\n")
	g.p("\t}\n")
	g.emitPost(f, 3)
	g.p("\treturn 0;\n")
	g.p("}\n")
}

// ---- bodytrack (pointer-dense data-parallel kernels) ----

func genBodytrack(g *gctx) {
	f := g.fab(2, 3)
	f.ptrs *= 2
	f.kernels += f.kernels / 2
	g.emitDecls(f)
	g.p("int *particles[64];\n")
	g.emitKernels(f)
	g.emitLocalFns(f)
	g.emitPostFuncs(f, g.unit*g.scale/2+1)

	g.p("void track_worker(void *arg) {\n")
	g.p("\tint pi;\n")
	g.p("\tfor (pi = 0; pi < 8; pi++) {\n")
	g.p("\t\tparticles[pi] = &g%d;\n", g.rnd(f.globals))
	g.p("\t\tint *pv;\n")
	g.p("\t\tpv = particles[pi];\n")
	g.p("\t\t*pv = 1;\n")
	g.p("\t}\n")
	g.emitWorkerBody(f, 5, 2, 1)
	g.p("}\n")
	g.emitPoolMain(f, "track_worker", 8, 5)
}

// ---- httpd_server (accept loop + post-join master phase) ----

func genHttpd(g *gctx) {
	f := g.fab(4, 2)
	g.emitDecls(f)
	g.p("int *config_root;\n")
	g.p("int *log_ptr;\n")
	g.emitKernels(f)
	g.emitLocalFns(f)
	g.emitPostFuncs(f, g.unit*g.scale+2)

	g.p("void http_handler(void *arg) {\n")
	g.p("\tint *cfg;\n")
	g.p("\tcfg = config_root;\n")
	g.emitWorkerBody(f, 2, 4, 1)
	g.p("\tlock(&lk0);\n")
	g.p("\tlog_ptr = cfg;\n")
	g.p("\tunlock(&lk0);\n")
	g.p("}\n")

	g.p("int main() {\n")
	g.p("\tthread_t pool[16];\n")
	g.p("\tint i;\n")
	g.p("\tconfig_root = &g0;\n")
	g.p("\tfor (i = 0; i < 16; i++) {\n")
	g.p("\t\tpool[i] = spawn(http_handler, NULL);\n")
	g.p("\t}\n")
	g.p("\tfor (i = 0; i < 16; i++) {\n")
	g.p("\t\tjoin(pool[i]);\n")
	g.p("\t}\n")
	g.p("\t// post-processing statistics phase (sequential)\n")
	g.emitPost(f, 8)
	g.p("\treturn 0;\n")
	g.p("}\n")
}

// ---- mt_daapd (db thread + web workers, locks + locals) ----

func genMtDaapd(g *gctx) {
	f := g.fab(8, 2)
	f.localFns += f.localFns / 2
	g.emitDecls(f)
	g.p("int *db_root;\n")
	g.emitKernels(f)
	g.emitLocalFns(f)
	g.emitPostFuncs(f, g.unit*g.scale+2)

	g.p("void db_thread(void *arg) {\n")
	g.p("\tint round;\n")
	g.p("\tfor (round = 0; round < 4; round++) {\n")
	g.p("\t\tlock(&lk0);\n")
	g.p("\t\tdb_root = &g%d;\n", g.rnd(f.globals))
	g.p("\t\tunlock(&lk0);\n")
	g.p("\t}\n")
	g.emitWorkerBody(f, 1, 2, 2)
	g.p("}\n")

	g.p("void web_worker(void *arg) {\n")
	g.p("\tint *snapshot;\n")
	g.p("\tlock(&lk0);\n")
	g.p("\tsnapshot = db_root;\n")
	g.p("\tunlock(&lk0);\n")
	g.emitWorkerBody(f, 2, 5, 2)
	g.p("}\n")

	g.p("int main() {\n")
	g.p("\tthread_t dbt;\n")
	g.p("\tthread_t web[8];\n")
	g.p("\tint i;\n")
	g.p("\tdb_root = &g0;\n")
	g.p("\tdbt = spawn(db_thread, NULL);\n")
	g.p("\tfor (i = 0; i < 8; i++) {\n")
	g.p("\t\tweb[i] = spawn(web_worker, NULL);\n")
	g.p("\t}\n")
	g.p("\tfor (i = 0; i < 8; i++) {\n")
	g.p("\t\tjoin(web[i]);\n")
	g.p("\t}\n")
	g.p("\tjoin(dbt);\n")
	g.emitPost(f, 4)
	g.p("\treturn 0;\n")
	g.p("}\n")
}

// ---- raytrace (large, deep call graph, unsynchronized shared writes) ----

func genRaytrace(g *gctx) {
	f := g.fab(2, 4)
	g.emitDecls(f)
	g.p("int *framebuf[128];\n")
	g.emitKernels(f)
	g.emitLocalFns(f)
	g.emitPostFuncs(f, g.unit*g.scale/2+1)

	g.p("void shade(int depth2) {\n")
	g.p("\tkernel0();\n")
	g.p("\tif (depth2 > 0) {\n")
	g.p("\t\tshade(depth2 - 1);\n")
	g.p("\t}\n")
	g.p("}\n")

	g.p("void render_tile(void *arg) {\n")
	g.p("\tint px;\n")
	g.p("\tfor (px = 0; px < 16; px++) {\n")
	g.p("\t\tframebuf[px] = &g%d;\n", g.rnd(f.globals))
	g.p("\t\tshade(3);\n")
	g.p("\t}\n")
	g.emitWorkerBody(f, 6, 2, 1)
	g.p("}\n")
	g.emitPoolMain(f, "render_tile", 8, 6)
}

// ---- x264 (pipeline + pool + lock groups) ----

func genX264(g *gctx) {
	f := g.fab(8, 3)
	g.emitDecls(f)
	g.p("struct Frame { int *plane; struct Frame *ref; };\n")
	g.p("struct Frame frames[16];\n")
	g.p("int *dpb[32];\n")
	g.emitKernels(f)
	g.emitLocalFns(f)
	g.emitPostFuncs(f, g.unit*g.scale/2+1)

	g.p("void lookahead(void *arg) {\n")
	g.p("\tint fi;\n")
	g.p("\tfor (fi = 0; fi < 8; fi++) {\n")
	g.p("\t\tlock(&lk0);\n")
	g.p("\t\tframes[fi].plane = &g%d;\n", g.rnd(f.globals))
	g.p("\t\tunlock(&lk0);\n")
	g.p("\t}\n")
	g.emitWorkerBody(f, 3, 2, 2)
	g.p("}\n")

	g.p("void encode_slice(void *arg) {\n")
	g.p("\tint mb;\n")
	g.p("\tfor (mb = 0; mb < 8; mb++) {\n")
	g.p("\t\tint *plane;\n")
	g.p("\t\tlock(&lk0);\n")
	g.p("\t\tplane = frames[mb].plane;\n")
	g.p("\t\tunlock(&lk0);\n")
	g.p("\t\tdpb[mb] = plane;\n")
	g.p("\t}\n")
	g.emitWorkerBody(f, 4, 3, 3)
	g.p("}\n")

	g.p("void deblock(void *arg) {\n")
	g.emitWorkerBody(f, 3, 2, 2)
	g.p("}\n")

	g.p("int main() {\n")
	g.p("\tthread_t la;\n")
	g.p("\tthread_t enc[8];\n")
	g.p("\tthread_t db2;\n")
	g.p("\tint i;\n")
	g.p("\tla = spawn(lookahead, NULL);\n")
	g.p("\tfor (i = 0; i < 8; i++) {\n")
	g.p("\t\tenc[i] = spawn(encode_slice, NULL);\n")
	g.p("\t}\n")
	g.p("\tdb2 = spawn(deblock, NULL);\n")
	g.p("\tfor (i = 0; i < 8; i++) {\n")
	g.p("\t\tjoin(enc[i]);\n")
	g.p("\t}\n")
	g.p("\tjoin(la);\n")
	g.p("\tjoin(db2);\n")
	g.emitPost(f, 6)
	g.p("\treturn 0;\n")
	g.p("}\n")
}

// Describe returns a short Table 1 style row for a spec at a scale.
func Describe(spec Spec, scale int) string {
	src := GenerateSpec(spec, scale)
	return fmt.Sprintf("%-14s %-40s paper:%6d gen:%5d", spec.Name, spec.Description, spec.PaperLOC, LOC(src))
}

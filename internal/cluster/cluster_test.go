package cluster

import (
	"io"
	"testing"
	"time"

	"repro/internal/server"
)

// TestClusterRun is the end-to-end fleet drill at test size: two live
// replicas behind a gateway, chaos (latency + errors) on replica 0, a
// hard kill/restart of replica 1 mid-run, and a client with retries off.
// The gates are the PR's acceptance criteria in miniature: zero
// client-visible failures while retries, hedges, and a full breaker
// open→close cycle are all actually observed.
func TestClusterRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fleet drill")
	}
	rep, err := Run(Options{
		Replicas: 2,
		Requests: 80,
		HotKeys:  6,
		Chaos: server.ChaosConfig{
			Latency:  20 * time.Millisecond,
			LatencyP: 0.5,
			ErrorP:   0.2,
			Seed:     7,
		},
		KillRestart: true,
		Seed:        42,
		HedgeAfter:  15 * time.Millisecond,
		Out:         io.Discard,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep.Print(testWriter{t})
	if err := rep.Gate(); err != nil {
		t.Fatalf("gate failed: %v", err)
	}
	if rep.ChaosInjected == 0 {
		t.Fatal("chaos replica reports zero injected faults")
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

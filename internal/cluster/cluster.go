// Package cluster is the fleet-level benchmark harness behind `fsambench
// -cluster`: it boots N real fsamd replicas (each a live HTTP server with
// its own cache and admission control), fronts them with an fsamgw
// gateway, and drives mixed hot/cold analysis traffic through the gateway
// while injecting chaos into one replica and kill/restarting another.
//
// The client runs with retries DISABLED — every fault the fleet produces
// must be absorbed by the gateway, or it shows up as a client-visible
// failure. The resulting Report carries the gateway's resilience counters
// and gates on the run: zero failures, retries and hedges actually
// exercised, a full breaker open→close cycle, and a sane fleet-wide cache
// hit ratio.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gateway"
	"repro/internal/harness"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/server/client"
)

// Options configures a cluster run. Zero values select the defaults.
type Options struct {
	// Replicas is the fleet size (default 2).
	Replicas int
	// Requests is the total number of analyze requests (default 200).
	Requests int
	// HotRatio is the fraction of traffic on the hot key set (default 0.7);
	// the rest are unique cold programs.
	HotRatio float64
	// HotKeys is the number of distinct hot programs (default 8).
	HotKeys int
	// Workers is the client concurrency (default 8).
	Workers int
	// Chaos is injected into replica 0 (latency/error/drop faults).
	Chaos server.ChaosConfig
	// KillRestart, when set, hard-kills the LAST replica after a third of
	// the traffic and restarts it (fresh process, empty cache) later.
	KillRestart bool
	// Seed makes the traffic plan reproducible (default 1).
	Seed int64
	// HedgeAfter is the gateway's fixed hedge delay (default 30ms; the
	// adaptive policy needs more samples than a short bench provides).
	HedgeAfter time.Duration
	// Out receives progress lines (default: discard).
	Out io.Writer
}

func (o Options) withDefaults() Options {
	if o.Replicas < 2 {
		o.Replicas = 2
	}
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.HotRatio <= 0 || o.HotRatio > 1 {
		o.HotRatio = 0.7
	}
	if o.HotKeys <= 0 {
		o.HotKeys = 8
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.HedgeAfter <= 0 {
		o.HedgeAfter = 30 * time.Millisecond
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// Report is the outcome of a cluster run.
type Report struct {
	Requests        int
	Failures        int
	FirstFailure    string
	QueryRecoveries int

	Retries       uint64
	Hedges        uint64
	HedgeWins     uint64
	Failovers     uint64
	PeerFills     uint64
	CacheHits     uint64
	BreakerOpens  uint64
	BreakerCloses uint64

	ChaosInjected float64
	HitRatio      float64
	Elapsed       time.Duration
}

// hitRatioFloor is the fleet-wide cache hit gate: with the default 70%
// hot traffic the observed ratio sits well above 0.5, so 0.25 tolerates a
// kill/restart emptying one replica's cache without letting a broken peek
// path slide.
const hitRatioFloor = 0.25

// Gate enforces the run's acceptance criteria.
func (r *Report) Gate() error {
	var errs []error
	if r.Failures > 0 {
		errs = append(errs, fmt.Errorf("%d client-visible failures (first: %s)", r.Failures, r.FirstFailure))
	}
	if r.Retries == 0 {
		errs = append(errs, errors.New("no retries observed — chaos did not exercise the retry path"))
	}
	if r.Hedges == 0 {
		errs = append(errs, errors.New("no hedged requests observed"))
	}
	if r.BreakerOpens == 0 || r.BreakerCloses == 0 {
		errs = append(errs, fmt.Errorf("no full breaker cycle (opens %d, closes %d)", r.BreakerOpens, r.BreakerCloses))
	}
	if r.HitRatio < hitRatioFloor {
		errs = append(errs, fmt.Errorf("fleet cache hit ratio %.2f below %.2f", r.HitRatio, hitRatioFloor))
	}
	return errors.Join(errs...)
}

// Print writes the human-readable report.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "cluster run: %d requests in %.1fs, %d failures\n",
		r.Requests, r.Elapsed.Seconds(), r.Failures)
	fmt.Fprintf(w, "  retries %d  hedges %d (wins %d)  failovers %d  peer fills %d\n",
		r.Retries, r.Hedges, r.HedgeWins, r.Failovers, r.PeerFills)
	fmt.Fprintf(w, "  breaker opens %d  closes %d  chaos faults injected %.0f\n",
		r.BreakerOpens, r.BreakerCloses, r.ChaosInjected)
	fmt.Fprintf(w, "  cache hits %d (fleet hit ratio %.2f)  query recoveries %d\n",
		r.CacheHits, r.HitRatio, r.QueryRecoveries)
}

// replicaProc is one in-process "fsamd": a real TCP listener and HTTP
// server over a fresh server.Server, so kills and restarts behave like a
// process dying (connections sever; the restarted instance has an empty
// cache).
type replicaProc struct {
	addr  string
	chaos server.ChaosConfig
	svc   *server.Server
	hsrv  *http.Server
}

func startReplica(addr string, chaos server.ChaosConfig) (*replicaProc, error) {
	var ln net.Listener
	var err error
	// The restart path rebinds the address the kill just released; give
	// the kernel a few tries to finish tearing the old listener down.
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return nil, fmt.Errorf("replica listen %s: %w", addr, err)
	}
	svc := server.New(server.Options{Chaos: chaos, Log: log.New(io.Discard, "", 0)})
	hsrv := &http.Server{Handler: svc.Handler()}
	go hsrv.Serve(ln)
	return &replicaProc{addr: ln.Addr().String(), chaos: chaos, svc: svc, hsrv: hsrv}, nil
}

// kill severs the replica like a SIGKILL: listener and live connections
// close immediately; nothing drains.
func (rp *replicaProc) kill() { rp.hsrv.Close() }

// hotSource generates the i-th hot program — distinct globals so every hot
// key is a distinct content address.
func hotSource(i int) string {
	return fmt.Sprintf("int h%d; int *hp%d; int main() { hp%d = &h%d; return 0; }", i, i, i, i)
}

// coldSource generates a unique never-repeated program.
func coldSource(i int) string {
	return fmt.Sprintf("int c%d; int *cp%d; int main() { cp%d = &c%d; return %d; }", i, i, i, i, i%2)
}

// Run boots the fleet, drives the traffic, and reports. The caller decides
// what to do with Report.Gate().
func Run(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	fmt.Fprintf(opt.Out, "cluster: %d replicas, %d requests (%d%% hot over %d keys), chaos on replica 0, kill/restart=%v\n",
		opt.Replicas, opt.Requests, int(opt.HotRatio*100), opt.HotKeys, opt.KillRestart)

	// Fleet.
	reps := make([]*replicaProc, opt.Replicas)
	for i := range reps {
		chaos := server.ChaosConfig{}
		if i == 0 {
			chaos = opt.Chaos
		}
		rp, err := startReplica("127.0.0.1:0", chaos)
		if err != nil {
			return nil, err
		}
		reps[i] = rp
		defer rp.kill()
	}
	urls := make([]string, len(reps))
	for i, rp := range reps {
		urls[i] = "http://" + rp.addr
	}

	// Gateway: fast probes and a short breaker cooldown so the bench can
	// observe a full open→close cycle inside seconds.
	gw, err := gateway.New(gateway.Options{
		Replicas:         urls,
		ProbeInterval:    100 * time.Millisecond,
		ProbeTimeout:     time.Second,
		BreakerThreshold: 5,
		BreakerCooldown:  500 * time.Millisecond,
		HedgeAfter:       opt.HedgeAfter,
		Retry: resilience.Policy{
			MaxAttempts: 3,
			Backoff:     resilience.Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		},
	})
	if err != nil {
		return nil, err
	}
	gw.Start()
	defer gw.Stop()
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	gsrv := &http.Server{Handler: gw.Handler()}
	go gsrv.Serve(gln)
	defer gsrv.Close()

	// The client through the gateway, retries OFF: the gateway must
	// absorb every fault or the bench counts a failure.
	cl := client.New("http://" + gln.Addr().String())
	cl.Retry = &resilience.Policy{MaxAttempts: 1}

	// Deterministic traffic plan.
	rng := rand.New(rand.NewSource(opt.Seed))
	plan := make([]string, opt.Requests)
	for i := range plan {
		if rng.Float64() < opt.HotRatio {
			plan[i] = hotSource(rng.Intn(opt.HotKeys))
		} else {
			plan[i] = coldSource(i)
		}
	}

	var (
		done       atomic.Int64
		failures   atomic.Int64
		recoveries atomic.Int64
		firstFail  atomic.Value
	)
	fail := func(err error) {
		failures.Add(1)
		firstFail.CompareAndSwap(nil, err.Error())
	}

	// Killer: hard-kill the last replica after a third of the traffic,
	// hold it down long enough for probes to trip its breaker, restart it
	// as a fresh (cold-cache) instance.
	killerDone := make(chan struct{})
	victim := len(reps) - 1
	if opt.KillRestart {
		go func() {
			defer close(killerDone)
			for done.Load() < int64(opt.Requests/3) {
				time.Sleep(10 * time.Millisecond)
			}
			fmt.Fprintf(opt.Out, "cluster: killing replica %d (%s)\n", victim, reps[victim].addr)
			reps[victim].kill()
			time.Sleep(800 * time.Millisecond) // probes fail, breaker opens, traffic fails over
			rp, err := startReplica(reps[victim].addr, reps[victim].chaos)
			if err != nil {
				fail(fmt.Errorf("restart replica %d: %w", victim, err))
				return
			}
			reps[victim] = rp
			fmt.Fprintf(opt.Out, "cluster: restarted replica %d\n", victim)
		}()
	} else {
		close(killerDone)
	}

	// Traffic.
	ctx := context.Background()
	start := time.Now()
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				src := plan[i]
				resp, err := cl.Analyze(ctx, server.AnalyzeRequest{Source: src})
				if err != nil {
					fail(fmt.Errorf("analyze #%d: %w", i, err))
					done.Add(1)
					continue
				}
				// Every fifth request also reads back through the query
				// path. A 404 can be legitimate — the only replica caching
				// this id may have just been killed — and the recovery a
				// real client would do is re-analyze, then re-query.
				if i%5 == 0 {
					if _, err := cl.Races(ctx, resp.ID); err != nil {
						var apiErr *client.APIError
						if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
							if resp, err = cl.Analyze(ctx, server.AnalyzeRequest{Source: src}); err == nil {
								_, err = cl.Races(ctx, resp.ID)
							}
							if err != nil {
								fail(fmt.Errorf("query recovery #%d: %w", i, err))
							} else {
								recoveries.Add(1)
							}
						} else {
							fail(fmt.Errorf("query #%d: %w", i, err))
						}
					}
				}
				done.Add(1)
			}
		}()
	}
	for i := 0; i < opt.Requests; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	<-killerDone
	elapsed := time.Since(start)

	// The breaker cycle outlives the traffic: probes keep running, so wait
	// (bounded) for the restarted replica's breaker to walk back closed.
	if opt.KillRestart {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			st := gw.Stats()
			if st.BreakerOpens > 0 && st.BreakerCloses > 0 {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	st := gw.Stats()
	rep := &Report{
		Requests:        opt.Requests,
		Failures:        int(failures.Load()),
		QueryRecoveries: int(recoveries.Load()),
		Retries:         st.Retries,
		Hedges:          st.Hedges,
		HedgeWins:       st.HedgeWins,
		Failovers:       st.Failovers,
		PeerFills:       st.PeerFills,
		CacheHits:       st.CacheHits,
		BreakerOpens:    st.BreakerOpens,
		BreakerCloses:   st.BreakerCloses,
		HitRatio:        float64(st.CacheHits) / float64(opt.Requests),
		Elapsed:         elapsed,
	}
	if s, ok := firstFail.Load().(string); ok {
		rep.FirstFailure = s
	}

	// Chaos evidence straight from the chaotic replica's own exposition.
	if text, err := client.New(urls[0]).Metrics(ctx); err == nil {
		rep.ChaosInjected = harness.PromSum(harness.ParsePromText(text), "fsamd_chaos_injected_total")
	}
	return rep, nil
}

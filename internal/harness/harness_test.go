package harness_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	fsam "repro"
	"repro/internal/harness"
	"repro/internal/workload"
)

func TestTable1(t *testing.T) {
	rows := harness.RunTable1(1)
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.GenLOC == 0 || r.Stmts == 0 || r.Functions == 0 {
			t.Errorf("%s: empty row %+v", r.Name, r)
		}
	}
	// Paper ordering of the first and last entries.
	if rows[0].Name != "word_count" || rows[9].Name != "x264" {
		t.Error("suite order must match the paper's Table 1")
	}
	var buf bytes.Buffer
	harness.PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "word_count") || !strings.Contains(buf.String(), "Total") {
		t.Error("rendered table incomplete")
	}
}

func TestTable2SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := harness.RunTable2(1, 30*time.Second, fsam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FSAMTime <= 0 || r.FSAMBytes == 0 {
			t.Errorf("%s: FSAM row empty", r.Name)
		}
		if !r.NSOOT {
			if r.NSTime < r.FSAMTime {
				t.Errorf("%s: baseline faster than FSAM (%v < %v)", r.Name, r.NSTime, r.FSAMTime)
			}
			if r.NSBytes < r.FSAMBytes {
				t.Errorf("%s: baseline smaller than FSAM", r.Name)
			}
		}
	}
	var buf bytes.Buffer
	harness.PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "Average") {
		t.Error("summary line missing")
	}
}

func TestFigure12Render(t *testing.T) {
	// Rendering only (running the full ablations is covered by the bench
	// and the fsambench command); construct synthetic rows.
	rows := []harness.Fig12Row{
		{Name: "demo", Slowdown: [3]float64{1.2, 8.5, 1.1}},
	}
	var buf bytes.Buffer
	harness.PrintFigure12(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "No-Value-Flow") {
		t.Errorf("render: %s", out)
	}
}

func TestRunFSAMAndNonSparse(t *testing.T) {
	spec, ok := workload.ByName("word_count")
	if !ok {
		t.Fatal("no spec")
	}
	a, d, err := harness.RunFSAM(spec, 1, fsam.Config{}, 0)
	if err != nil || a == nil || d <= 0 {
		t.Fatalf("RunFSAM: %v", err)
	}
	b, d2, err := harness.RunNonSparse(spec, 1, 30*time.Second)
	if err != nil || b == nil || d2 <= 0 {
		t.Fatalf("RunNonSparse: %v", err)
	}
}

func TestTable1PointersRendered(t *testing.T) {
	rows := harness.RunTable1(1)
	for _, r := range rows {
		if r.Pointers == 0 {
			t.Errorf("%s: Pointers not populated", r.Name)
		}
	}
	var buf bytes.Buffer
	harness.PrintTable1(&buf, rows)
	header := strings.SplitN(buf.String(), "\n", 3)[1]
	if !strings.Contains(header, "Pointers") {
		t.Errorf("header lacks Pointers column: %q", header)
	}
}

// TestPercentiles pins the nearest-rank definition the fsambench -server
// mode reports.
func TestPercentiles(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	samples := []time.Duration{ms(9), ms(1), ms(5), ms(3), ms(7)} // unsorted on purpose
	got := harness.Percentiles(samples, 0, 0.5, 0.9, 0.99, 1)
	want := []time.Duration{ms(1), ms(5), ms(9), ms(9), ms(9)}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("percentile %d: got %s, want %s", i, got[i], want[i])
		}
	}
	// The input must not be reordered.
	if samples[0] != ms(9) || samples[4] != ms(7) {
		t.Errorf("Percentiles mutated its input: %v", samples)
	}
	if got := harness.Percentiles(nil, 0.5); got[0] != 0 {
		t.Errorf("empty sample p50 = %s, want 0", got[0])
	}
	one := harness.Percentiles([]time.Duration{ms(4)}, 0.5, 0.99)
	if one[0] != ms(4) || one[1] != ms(4) {
		t.Errorf("single sample percentiles = %v, want all 4ms", one)
	}
}

// TestParsePromText exercises the exposition parser the cluster harness
// gates with.
func TestParsePromText(t *testing.T) {
	text := "# HELP x y\n# TYPE x counter\nx 3\nx_labeled{kind=\"a\"} 2\nx_labeled{kind=\"b\"} 4.5\n\nmalformed\n"
	s := harness.ParsePromText(text)
	if s["x"] != 3 {
		t.Fatalf("x = %v", s["x"])
	}
	if got := harness.PromSum(s, "x_labeled"); got != 6.5 {
		t.Fatalf("PromSum(x_labeled) = %v, want 6.5", got)
	}
	if got := harness.PromSum(s, "x"); got != 3 {
		t.Fatalf("PromSum(x) = %v, want 3 (labels of other families excluded)", got)
	}
}

package harness

// Incremental-analysis helpers shared by the delta tests, fsambench
// -incremental, and the CI smoke step: a canonical one-function edit over
// generated workloads and an observable-result fingerprint that must be
// bit-identical between a from-scratch run and an incremental re-analysis.

import (
	"context"
	"fmt"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/ir"
	"repro/internal/workload"

	fsam "repro"
)

// sitePos matches the allocation/spawn-site position suffix embedded in
// heap and thread object names ("heap@f:42", "thread@main:7"). Positions
// are normalized away before comparison: the delta contract is equality
// modulo positions (a noop-tier adoption keeps the base run's line
// numbers, which an edit may have shifted without changing any semantics).
var sitePos = regexp.MustCompile(`@([A-Za-z_][A-Za-z0-9_]*):[0-9]+`)

func normalizePos(s string) string { return sitePos.ReplaceAllString(s, "@$1") }

// Fingerprint renders every observable answer of an analysis into one
// stable string: the flow-sensitive exit points-to set of every global, the
// alias-pair count, and the sorted diagnostics (checker, object, message,
// related messages — everything but raw positions). Two analyses of
// semantically equal programs under one engine must fingerprint
// identically — this is the equality contract AnalyzeDeltaCtx promises
// against a from-scratch run.
func Fingerprint(a *fsam.Analysis) (string, error) {
	if a == nil || a.Prog == nil {
		return "", fmt.Errorf("no analysis to fingerprint")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "engine=%s precision=%s\n", a.Engine, a.Precision)

	var globals []string
	for _, o := range a.Prog.Objects {
		if o.Kind == ir.ObjGlobal {
			globals = append(globals, o.Name)
		}
	}
	sort.Strings(globals)
	for _, g := range globals {
		names, err := a.PointsToGlobal(g)
		if err != nil {
			return "", fmt.Errorf("points-to %s: %w", g, err)
		}
		for i := range names {
			names[i] = normalizePos(names[i])
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "pt %s -> {%s}\n", g, strings.Join(names, ","))
	}
	fmt.Fprintf(&b, "aliaspairs=%d\n", a.AliasPairs())

	res, err := a.Diagnostics()
	if err != nil {
		return "", fmt.Errorf("diagnostics: %w", err)
	}
	var fps []string
	for _, d := range res.Diags {
		var rel []string
		for _, r := range d.Related {
			rel = append(rel, normalizePos(r.Message))
		}
		fps = append(fps, fmt.Sprintf("diag %s|%s|%s|%s",
			d.Checker, normalizePos(d.Object), normalizePos(d.Message), strings.Join(rel, ";")))
	}
	sort.Strings(fps)
	for _, fp := range fps {
		b.WriteString(fp)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// IncrementalRow is one benchmark's cold-vs-warm measurement: the wall
// time of a from-scratch analysis of the edited program against the wall
// time of re-analyzing the same edit incrementally, plus the equality
// witness (the two runs' Fingerprints compared).
type IncrementalRow struct {
	Name  string        `json:"name"`
	Scale int           `json:"scale"`
	Cold  time.Duration `json:"cold_ns"`
	Warm  time.Duration `json:"warm_ns"`
	// Tier is the delta tier the canonical edit landed in; Adopted and
	// Changed count functions.
	Tier    string `json:"tier"`
	Adopted int    `json:"adopted"`
	Changed int    `json:"changed"`
	// Identical reports whether the warm run's observable results matched
	// the cold run's exactly.
	Identical bool `json:"identical"`
}

// Ratio is warm over cold time (0 when cold was unmeasurably fast).
func (r IncrementalRow) Ratio() float64 {
	if r.Cold <= 0 {
		return 0
	}
	return float64(r.Warm) / float64(r.Cold)
}

// RunIncremental measures one benchmark at one scale: analyze the
// generated program (the editor's first open), apply CanonicalEdit, then
// analyze the edited program both from scratch (cold) and as a delta
// against the first analysis (warm), reps times each, keeping the minimum
// wall time. The minimum is the robust estimator here: the analyses are
// deterministic, so anything above the floor is scheduler or GC noise —
// significant on small machines where the suite shares one core. Cold and
// warm run the identical program, so the cold run doubles as the
// bit-identical-results witness. reps below 1 means 1.
func RunIncremental(ctx context.Context, name string, scale, reps int, timeout time.Duration, cfg fsam.Config) (IncrementalRow, error) {
	row := IncrementalRow{Name: name, Scale: scale}
	src, err := workload.Generate(name, scale)
	if err != nil {
		return row, err
	}
	edited, line := CanonicalEdit(src)
	if line < 0 {
		return row, fmt.Errorf("%s: no canonical edit site", name)
	}
	runCtx := func() (context.Context, context.CancelFunc) {
		if timeout > 0 {
			return context.WithTimeout(ctx, timeout)
		}
		return context.WithCancel(ctx)
	}

	bctx, cancel := runCtx()
	base, err := fsam.AnalyzeSourceCtx(bctx, name+".mc", src, cfg)
	cancel()
	if err != nil {
		return row, fmt.Errorf("%s: base analysis: %w", name, err)
	}

	var cold, warm *fsam.Analysis
	for i := 0; i < reps || i == 0; i++ {
		// Collect before each timed run so neither measurement pays the GC
		// debt of the allocations the previous run just retired.
		runtime.GC()
		cctx, cancel := runCtx()
		t0 := time.Now()
		c, err := fsam.AnalyzeSourceCtx(cctx, name+".mc", edited, cfg)
		d := time.Since(t0)
		cancel()
		if err != nil {
			return row, fmt.Errorf("%s: cold analysis: %w", name, err)
		}
		if cold == nil || d < row.Cold {
			row.Cold = d
		}
		cold = c

		runtime.GC()
		wctx, cancel := runCtx()
		t0 = time.Now()
		w, rep, err := fsam.AnalyzeDeltaCtx(wctx, base, name+".mc", edited)
		d = time.Since(t0)
		cancel()
		if err != nil {
			return row, fmt.Errorf("%s: warm analysis: %w", name, err)
		}
		if warm == nil || d < row.Warm {
			row.Warm = d
		}
		warm = w
		row.Tier = rep.Tier
		row.Adopted = rep.AdoptedFuncs
		row.Changed = len(rep.ChangedFuncs)
	}

	cfp, err := Fingerprint(cold)
	if err != nil {
		return row, fmt.Errorf("%s: cold fingerprint: %w", name, err)
	}
	wfp, err := Fingerprint(warm)
	if err != nil {
		return row, fmt.Errorf("%s: warm fingerprint: %w", name, err)
	}
	row.Identical = cfp == wfp
	return row, nil
}

// CanonicalEdit applies the benchmark's standard one-function edit to a
// generated workload: bump the trailing integer constant of the first
// side-effect-free filler line (`<name>_acc = <name>_acc * A + B;`). The
// edit changes exactly one function's content address while leaving the
// CFG isomorphic — the tier a typical constant tweak lands in. It returns
// the edited source and the zero-based line index it touched, or -1 when
// src has no filler line (then src is returned unchanged).
func CanonicalEdit(src string) (string, int) {
	lines := strings.Split(src, "\n")
	for i, ln := range lines {
		j := strings.Index(ln, "_acc * ")
		if j < 0 || !strings.HasSuffix(ln, ";") {
			continue
		}
		k := strings.LastIndex(ln, "+ ")
		if k < 0 {
			continue
		}
		numEnd := len(ln) - 1 // strip ";"
		num := ln[k+2 : numEnd]
		v := 0
		ok := len(num) > 0
		for _, c := range num {
			if c < '0' || c > '9' {
				ok = false
				break
			}
			v = v*10 + int(c-'0')
		}
		if !ok {
			continue
		}
		lines[i] = fmt.Sprintf("%s+ %d;", ln[:k], v+1)
		return strings.Join(lines, "\n"), i
	}
	return src, -1
}

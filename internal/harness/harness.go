// Package harness regenerates the paper's evaluation artifacts — Table 1
// (benchmark statistics), Table 2 (analysis time and memory of FSAM vs
// NONSPARSE) and Figure 12 (slowdown of FSAM with each thread-interference
// phase disabled) — over the synthetic workload suite. It is shared by the
// fsambench command and the testing.B benchmarks in bench_test.go.
package harness

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	fsam "repro"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// DefaultScale reproduces the paper's qualitative results in seconds.
const DefaultScale = 4

// DefaultTimeout stands in for the paper's two-hour NONSPARSE budget.
const DefaultTimeout = 30 * time.Second

// Table1Row is one line of Table 1. The JSON tags are the schema of
// `fsambench -table1 -json`.
type Table1Row struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	PaperLOC    int    `json:"paper_loc"`
	GenLOC      int    `json:"gen_loc"`
	Stmts       int    `json:"stmts"`
	Functions   int    `json:"functions"`
	Pointers    int    `json:"pointers"`
}

// RunTable1 computes benchmark statistics.
func RunTable1(scale int) []Table1Row {
	var rows []Table1Row
	for _, spec := range workload.Suite {
		src := workload.GenerateSpec(spec, scale)
		row := Table1Row{
			Name:        spec.Name,
			Description: spec.Description,
			PaperLOC:    spec.PaperLOC,
			GenLOC:      workload.LOC(src),
		}
		if prog, err := pipeline.Compile(spec.Name, src); err == nil {
			row.Stmts = prog.NumStmts()
			row.Functions = len(prog.Funcs)
			row.Pointers = len(prog.Vars)
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintTable1 renders Table 1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: Program statistics (scaled reproduction)\n")
	fmt.Fprintf(w, "%-14s %-38s %9s %7s %7s %6s %9s\n",
		"Benchmark", "Description", "PaperLOC", "GenLOC", "Stmts", "Funcs", "Pointers")
	total := 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-38s %9d %7d %7d %6d %9d\n",
			r.Name, r.Description, r.PaperLOC, r.GenLOC, r.Stmts, r.Functions, r.Pointers)
		total += r.GenLOC
	}
	fmt.Fprintf(w, "%-14s %-38s %9d %7d\n", "Total", "", 380659, total)
}

// FSAMStats is the FSAM half of a Table 2 row, factored out so every
// consumer of per-run statistics — the bench tables, the fsamd service's
// analyze responses — shares one JSON schema instead of re-deriving fields
// from fsam.Analysis. Embedded in Table2Row, its fields flatten into the
// historical `fsambench -json` schema unchanged.
type FSAMStats struct {
	FSAMTime       time.Duration `json:"fsam_ns"`
	FSAMBytes      uint64        `json:"fsam_bytes"`
	FSAMUniqueSets int           `json:"fsam_unique_sets"`
	FSAMSetRefs    int           `json:"fsam_set_refs"`
	FSAMDedup      float64       `json:"fsam_dedup_ratio"`
	FSAMOOT        bool          `json:"fsam_oot"`
	FSAMEngine     string        `json:"fsam_engine,omitempty"`
	FSAMPrecision  string        `json:"fsam_precision"`
	FSAMDegraded   string        `json:"fsam_degraded,omitempty"`
	// Thread-escape classification counters (zero on engines whose DAG
	// builds no thread model); FSAMEscapePruned counts interference edges
	// the escape oracle let every prune site skip.
	FSAMEscapeLocal     int `json:"fsam_escape_local,omitempty"`
	FSAMEscapeHandedOff int `json:"fsam_escape_handedoff,omitempty"`
	FSAMEscapeShared    int `json:"fsam_escape_shared,omitempty"`
	FSAMEscapePruned    int `json:"fsam_escape_pruned,omitempty"`
}

// StatsOf extracts the shared statistics view from a completed (possibly
// nil, possibly degraded) analysis. elapsed is the caller-observed wall
// time of the whole run; oot marks a deadline that expired before any tier
// completed.
func StatsOf(a *fsam.Analysis, elapsed time.Duration, oot bool) FSAMStats {
	st := FSAMStats{FSAMTime: elapsed, FSAMOOT: oot}
	if a != nil {
		st.FSAMBytes = a.Stats.Bytes
		st.FSAMUniqueSets = a.Stats.UniqueSets
		st.FSAMSetRefs = a.Stats.SetRefs
		st.FSAMDedup = a.Stats.DedupRatio
		st.FSAMEngine = a.Engine
		st.FSAMPrecision = a.Precision.String()
		st.FSAMDegraded = a.Stats.Degraded
		st.FSAMEscapeLocal = a.Stats.EscapeLocal
		st.FSAMEscapeHandedOff = a.Stats.EscapeHandedOff
		st.FSAMEscapeShared = a.Stats.EscapeShared
		st.FSAMEscapePruned = a.Stats.EscapePrunedEdges
	}
	return st
}

// Table2Row is one line of Table 2. The JSON tags are the schema of
// `fsambench -json`, which the BENCH trajectory consumes; the unique-set
// and dedup-ratio fields are the guardrail that interning keeps sharing
// sets (ratio > 1).
type Table2Row struct {
	Name string `json:"name"`
	FSAMStats
	NSTime       time.Duration `json:"nonsparse_ns"`
	NSBytes      uint64        `json:"nonsparse_bytes"`
	NSUniqueSets int           `json:"nonsparse_unique_sets"`
	NSSetRefs    int           `json:"nonsparse_set_refs"`
	NSDedup      float64       `json:"nonsparse_dedup_ratio"`
	NSOOT        bool          `json:"nonsparse_oot"`
}

// RunFSAM analyzes one generated benchmark with FSAM and a config.
// timeout <= 0 disables the deadline. A deadline that expires before the
// pre-analysis completes returns the partial Analysis together with an
// error for which pipeline.ErrCancelled is true; a later failure (deadline,
// budget, panic) is absorbed by the degradation ladder, landing in
// Analysis.Precision/Stats.Degraded with a nil error. Compile failures are
// returned, not panicked.
func RunFSAM(spec workload.Spec, scale int, cfg fsam.Config, timeout time.Duration) (*fsam.Analysis, time.Duration, error) {
	src := workload.GenerateSpec(spec, scale)
	prog, err := pipeline.Compile(spec.Name, src)
	if err != nil {
		return nil, 0, fmt.Errorf("workload %s does not compile: %w", spec.Name, err)
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	t0 := time.Now()
	a, err := fsam.AnalyzeProgramCtx(ctx, prog, cfg)
	return a, time.Since(t0), err
}

// RunNonSparse analyzes one generated benchmark with the baseline.
// Compile failures are returned, not panicked; an expired deadline is an
// OOT row (Baseline.OOT), not an error.
func RunNonSparse(spec workload.Spec, scale int, timeout time.Duration) (*fsam.Baseline, time.Duration, error) {
	src := workload.GenerateSpec(spec, scale)
	prog, err := pipeline.Compile(spec.Name, src)
	if err != nil {
		return nil, 0, fmt.Errorf("workload %s does not compile: %w", spec.Name, err)
	}
	t0 := time.Now()
	b := fsam.AnalyzeProgramNonSparse(prog, timeout)
	return b, time.Since(t0), nil
}

// RunTable2 measures every benchmark under both analyses with cfg (the
// zero Config reproduces the paper's setup; MemBudgetBytes/StepLimit
// exercise the degradation ladder). The timeout budget applies to each
// analysis independently; a run that exceeds it becomes an OOT row rather
// than an error, and a run the ladder degraded carries its tier in
// FSAMPrecision with the reason in FSAMDegraded.
func RunTable2(scale int, timeout time.Duration, cfg fsam.Config) ([]Table2Row, error) {
	var rows []Table2Row
	for _, spec := range workload.Suite {
		a, ft, err := RunFSAM(spec, scale, cfg, timeout)
		fsamOOT := false
		if err != nil {
			if !pipeline.ErrCancelled(err) {
				return nil, err
			}
			fsamOOT = true
		}
		row := Table2Row{Name: spec.Name, FSAMStats: StatsOf(a, ft, fsamOOT)}
		b, nt, err := RunNonSparse(spec, scale, timeout)
		if err != nil {
			return nil, err
		}
		if b.Err != nil {
			return nil, fmt.Errorf("workload %s baseline: %w", spec.Name, b.Err)
		}
		row.NSTime = nt
		row.NSBytes = b.Stats.Bytes
		row.NSUniqueSets = b.Stats.UniqueSets
		row.NSSetRefs = b.Stats.SetRefs
		row.NSDedup = b.Stats.DedupRatio
		row.NSOOT = b.OOT
		rows = append(rows, row)
	}
	return rows, nil
}

// EngineRow is one cell of the engine comparison matrix: one benchmark
// analyzed by one registered engine. AliasPairs is the precision metric —
// the number of may-aliasing pairs among the program's distinct load/store
// address variables — which the soundness ordering makes monotone: sparse
// FSAM admits the fewest pairs, Andersen the most, cfgfree in between.
// The JSON tags are the schema of `fsambench -engines -json`.
type EngineRow struct {
	Name       string        `json:"name"`
	Engine     string        `json:"engine"`
	Time       time.Duration `json:"time_ns"`
	Bytes      uint64        `json:"bytes"`
	AliasPairs int           `json:"alias_pairs"`
	Precision  string        `json:"precision"`
	Degraded   string        `json:"degraded,omitempty"`
	OOT        bool          `json:"oot"`
	// Rounds is the thread-modular engine's interference round count
	// (zero for engines without an interference fixpoint).
	Rounds int `json:"interference_rounds,omitempty"`
	// SeqTime is the wall time of the same tmod run with its per-thread
	// solves forced onto one goroutine (Config.Sequential); ParSpeedup is
	// SeqTime/Time — the measured benefit of solving threads concurrently.
	// Populated for tmod rows only.
	SeqTime    time.Duration `json:"seq_time_ns,omitempty"`
	ParSpeedup float64       `json:"par_speedup,omitempty"`
	// EscapeShared and EscapePruned summarize the thread-escape
	// classification of the run: how many abstract objects ended up
	// Shared, and how many interference edges/publications/pairs the
	// sharedness oracle pruned. Zero for engines without a thread model.
	EscapeShared int `json:"escape_shared,omitempty"`
	EscapePruned int `json:"escape_pruned,omitempty"`
}

// RunEngineMatrix measures every benchmark under each named engine,
// reporting wall time, memory, and the alias-pair precision metric. An
// expired deadline is an OOT cell, not an error; a degraded run carries
// the landed tier. Empty engines defaults to the degradation ladder's
// rungs (every on-ladder engine, most precise first).
func RunEngineMatrix(scale int, timeout time.Duration, engines []string) ([]EngineRow, error) {
	if len(engines) == 0 {
		engines = fsam.LadderEngines()
	}
	var rows []EngineRow
	for _, spec := range workload.Suite {
		for _, eng := range engines {
			a, t, err := RunFSAM(spec, scale, fsam.Config{Engine: eng}, timeout)
			row := EngineRow{Name: spec.Name, Engine: eng, Time: t}
			if err != nil {
				if !pipeline.ErrCancelled(err) {
					return nil, fmt.Errorf("engine %s on %s: %w", eng, spec.Name, err)
				}
				row.OOT = true
			}
			if a != nil {
				row.Bytes = a.Stats.Bytes
				row.AliasPairs = a.AliasPairs()
				row.Precision = a.Precision.String()
				row.Degraded = a.Stats.Degraded
				row.Rounds = a.Stats.InterferenceRounds
				row.EscapeShared = a.Stats.EscapeShared
				row.EscapePruned = a.Stats.EscapePrunedEdges
			}
			if eng == "tmod" && !row.OOT && row.Degraded == "" {
				// Re-run with the per-thread solves serialized to measure
				// what the goroutine-per-thread rounds actually buy.
				if _, st, err := RunFSAM(spec, scale, fsam.Config{Engine: eng, Sequential: true}, timeout); err == nil {
					row.SeqTime = st
					if row.Time > 0 {
						row.ParSpeedup = float64(st) / float64(row.Time)
					}
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintEngineMatrix renders the engine comparison matrix grouped by
// benchmark, so the alias-pair ordering across engines reads line by line.
func PrintEngineMatrix(w io.Writer, rows []EngineRow) {
	fmt.Fprintf(w, "Engine comparison: wall time, memory, and alias-pair precision per backend\n")
	fmt.Fprintf(w, "%-14s %-10s %12s %12s %12s  %s\n",
		"Program", "Engine", "Time(s)", "Mem(MB)", "AliasPairs", "Tier")
	prev := ""
	for _, r := range rows {
		name := r.Name
		if name == prev {
			name = ""
		}
		prev = r.Name
		t := fmt.Sprintf("%12.3f", r.Time.Seconds())
		if r.OOT {
			t = fmt.Sprintf("%12s", "OOT")
		}
		extra := ""
		if r.Rounds > 0 {
			extra = fmt.Sprintf("  rounds=%d", r.Rounds)
			if r.ParSpeedup > 0 {
				extra += fmt.Sprintf(" seq/par=%.2fx", r.ParSpeedup)
			}
		}
		if r.EscapeShared > 0 || r.EscapePruned > 0 {
			extra += fmt.Sprintf("  shared=%d pruned=%d", r.EscapeShared, r.EscapePruned)
		}
		fmt.Fprintf(w, "%-14s %-10s %s %12.2f %12d  %s%s\n",
			name, r.Engine, t, float64(r.Bytes)/1e6, r.AliasPairs, r.Precision, extra)
		if r.Degraded != "" {
			fmt.Fprintf(w, "%-14s   degraded: %s\n", "", r.Degraded)
		}
	}
}

// fsamFull reports whether the row's FSAM run completed at full precision
// (neither out of time nor degraded down the ladder).
func (r Table2Row) fsamFull() bool {
	return !r.FSAMOOT &&
		(r.FSAMPrecision == "" || r.FSAMPrecision == fsam.PrecisionSparseFS.String())
}

// PrintTable2 renders Table 2 with speedup/memory summary lines matching
// the paper's reporting style.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2: Analysis time and memory usage\n")
	fmt.Fprintf(w, "%-14s %12s %12s %12s %12s %9s %9s %s\n",
		"Program", "FSAM(s)", "NonSp(s)", "FSAM(MB)", "NonSp(MB)", "F-dedup", "NS-dedup", "Tier")
	var spSum, memSum float64
	var nBoth int
	for _, r := range rows {
		fs := fmt.Sprintf("%12.3f", r.FSAMTime.Seconds())
		fsm := fmt.Sprintf("%12.2f", float64(r.FSAMBytes)/1e6)
		ns := fmt.Sprintf("%12.3f", r.NSTime.Seconds())
		nsm := fmt.Sprintf("%12.2f", float64(r.NSBytes)/1e6)
		if r.FSAMOOT {
			fs = fmt.Sprintf("%12s", "OOT")
			fsm = fmt.Sprintf("%12s", "OOT")
		}
		if r.NSOOT {
			ns = fmt.Sprintf("%12s", "OOT")
			nsm = fmt.Sprintf("%12s", "OOT")
		}
		if r.fsamFull() && !r.NSOOT {
			spSum += r.NSTime.Seconds() / r.FSAMTime.Seconds()
			memSum += float64(r.NSBytes) / float64(r.FSAMBytes)
			nBoth++
		}
		tier := r.FSAMPrecision
		if tier == "" {
			tier = fsam.PrecisionSparseFS.String()
		}
		fmt.Fprintf(w, "%-14s %s %s %s %s %8.2fx %8.2fx %s\n",
			r.Name, fs, ns, fsm, nsm, r.FSAMDedup, r.NSDedup, tier)
		if r.FSAMDegraded != "" {
			fmt.Fprintf(w, "%-14s   degraded: %s\n", "", r.FSAMDegraded)
		}
	}
	if nBoth > 0 {
		fmt.Fprintf(w, "Average over programs analyzable by both: %.1fx faster, %.1fx less memory\n",
			spSum/float64(nBoth), memSum/float64(nBoth))
	}
	fmt.Fprintf(w, "(paper: 12x faster, 28x less memory; raytrace and x264 OOT for NonSparse)\n")
}

// Fig12Config names one ablation.
type Fig12Config struct {
	Label string
	Cfg   fsam.Config
}

// Fig12Configs are the paper's three configurations.
var Fig12Configs = []Fig12Config{
	{"No-Interleaving", fsam.Config{NoInterleaving: true}},
	{"No-Value-Flow", fsam.Config{NoValueFlow: true}},
	{"No-Lock", fsam.Config{NoLock: true}},
}

// Fig12Row holds the slowdown factors of one benchmark.
type Fig12Row struct {
	Name     string
	Baseline time.Duration
	// Slowdown[i] matches Fig12Configs[i].
	Slowdown [3]float64
	Times    [3]time.Duration
}

// resolutionTime is the quantity Figure 12 ratios: the cost of sparse
// points-to resolution, i.e. def-use graph construction plus the sparse
// solve — the stages that consume the interference-analysis results (the
// paper measures "the impact of each phase on the performance of sparse
// flow-sensitive points-to resolution").
func resolutionTime(a *fsam.Analysis) time.Duration {
	return a.Stats.Times.DefUse + a.Stats.Times.Sparse
}

// fig12Reps repeats each measurement and keeps the minimum, damping noise
// at millisecond scale.
const fig12Reps = 3

func minResolution(spec workload.Spec, scale int, cfg fsam.Config) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < fig12Reps; i++ {
		a, _, err := RunFSAM(spec, scale, cfg, 0)
		if err != nil {
			return 0, err
		}
		t := resolutionTime(a)
		if best == 0 || t < best {
			best = t
		}
	}
	return best, nil
}

// RunFigure12 measures the ablation slowdowns.
func RunFigure12(scale int) ([]Fig12Row, error) {
	var rows []Fig12Row
	for _, spec := range workload.Suite {
		base, err := minResolution(spec, scale, fsam.Config{})
		if err != nil {
			return nil, err
		}
		row := Fig12Row{Name: spec.Name, Baseline: base}
		for i, c := range Fig12Configs {
			t, err := minResolution(spec, scale, c.Cfg)
			if err != nil {
				return nil, err
			}
			row.Times[i] = t
			row.Slowdown[i] = t.Seconds() / base.Seconds()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFigure12 renders the ablation slowdowns as an ASCII chart.
func PrintFigure12(w io.Writer, rows []Fig12Row) {
	fmt.Fprintf(w, "Figure 12: Slowdown over FSAM with one interference phase disabled\n")
	fmt.Fprintf(w, "%-14s %16s %16s %16s\n", "Program",
		Fig12Configs[0].Label, Fig12Configs[1].Label, Fig12Configs[2].Label)
	var logSums [3]float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %15.2fx %15.2fx %15.2fx\n",
			r.Name, r.Slowdown[0], r.Slowdown[1], r.Slowdown[2])
		for i := range logSums {
			logSums[i] += math.Log(r.Slowdown[i])
		}
	}
	if n := float64(len(rows)); n > 0 {
		fmt.Fprintf(w, "%-14s %15.2fx %15.2fx %15.2fx\n", "GeoMean",
			math.Exp(logSums[0]/n), math.Exp(logSums[1]/n), math.Exp(logSums[2]/n))
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s |%s\n", r.Name, bar(r.Slowdown[0])+bar(r.Slowdown[1])+bar(r.Slowdown[2]))
	}
	fmt.Fprintf(w, "(each group: %s / %s / %s; one # per 0.25x)\n",
		Fig12Configs[0].Label, Fig12Configs[1].Label, Fig12Configs[2].Label)
}

func bar(x float64) string {
	n := int(x * 4)
	if n > 60 {
		n = 60
	}
	if n < 1 {
		n = 1
	}
	return strings.Repeat("#", n) + " "
}

// Percentiles returns the nearest-rank quantiles of samples for each q in
// (0, 1]. It copies and sorts; the input is untouched. Shared by the
// in-process benchmarks and `fsambench -server`, which reports
// client-observed service latency the same way.
func Percentiles(samples []time.Duration, qs ...float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	if len(samples) == 0 {
		return out
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, q := range qs {
		rank := int(math.Ceil(q * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		out[i] = sorted[rank-1]
	}
	return out
}

// CountPointerStmts tallies loads and stores, a rough pointer-density
// metric used in Table 1 reporting.
func CountPointerStmts(prog *ir.Program) (loads, stores int) {
	for _, s := range prog.Stmts {
		switch s.(type) {
		case *ir.Load:
			loads++
		case *ir.Store:
			stores++
		}
	}
	return
}

package harness

import (
	"strconv"
	"strings"
)

// ParsePromText parses a Prometheus text exposition into sample → value.
// Keys keep their label sets verbatim (`name{label="x"}`), so callers can
// look up exact samples or fold families with PromSum. Comment and type
// lines, blank lines, and malformed samples are skipped — the parser is
// for harness gates over our own daemons' expositions, not a general
// scraper.
func ParsePromText(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the field after the last space outside braces; our
		// expositions never put spaces in label values' tails, so the last
		// space split is sufficient.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[strings.TrimSpace(line[:i])] = v
	}
	return out
}

// PromSum folds every sample of one metric family — `family` alone and
// `family{...}` with any labels — into a single total.
func PromSum(samples map[string]float64, family string) float64 {
	var n float64
	for k, v := range samples {
		if k == family || strings.HasPrefix(k, family+"{") {
			n += v
		}
	}
	return n
}

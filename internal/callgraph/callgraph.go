// Package callgraph builds the program call graph from the pre-analysis
// (on-the-fly resolved targets), computes its strongly connected components,
// and provides the interned calling-context (call-string) machinery used by
// every context-sensitive phase.
//
// As in the paper (Section 3.1), a context is a stack of call sites from
// main's entry to the current site; call sites inside a call-graph SCC are
// analyzed context-insensitively (pushing such a site is a no-op), which
// keeps the context space finite even for recursive programs.
package callgraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/andersen"
	"repro/internal/ir"
)

// Graph is the program call graph.
type Graph struct {
	Prog *ir.Program
	Pre  *andersen.Result

	// CalleesOf maps a Call or Fork statement to its resolved targets.
	CalleesOf map[ir.Stmt][]*ir.Function
	// CallersOf maps a function to the call/fork statements targeting it.
	CallersOf map[*ir.Function][]ir.Stmt

	// SCCOf assigns each function its SCC index; functions in the same
	// cycle share an index. Trivial SCCs (single function, no self loop)
	// also get indices, with selfRecursive marking true cycles.
	SCCOf        map[*ir.Function]int
	sccRecursive []bool
	numSCCs      int

	// Reachable lists functions reachable from main (via calls and forks).
	Reachable map[*ir.Function]bool
}

// Build constructs the call graph from pre-analysis results.
func Build(pre *andersen.Result) *Graph {
	g := &Graph{
		Prog:      pre.Prog,
		Pre:       pre,
		CalleesOf: map[ir.Stmt][]*ir.Function{},
		CallersOf: map[*ir.Function][]ir.Stmt{},
		SCCOf:     map[*ir.Function]int{},
		Reachable: map[*ir.Function]bool{},
	}
	for _, f := range pre.Prog.Funcs {
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				switch s := s.(type) {
				case *ir.Call:
					tgts := pre.CallTargets[s]
					g.CalleesOf[s] = tgts
					for _, t := range tgts {
						g.CallersOf[t] = append(g.CallersOf[t], s)
					}
				case *ir.Fork:
					tgts := pre.ForkTargets[s]
					g.CalleesOf[s] = tgts
					for _, t := range tgts {
						g.CallersOf[t] = append(g.CallersOf[t], s)
					}
				}
			}
		}
	}
	g.computeSCCs()
	g.computeReachable()
	return g
}

// succs returns the callee functions of f (calls and forks).
func (g *Graph) succs(f *ir.Function) []*ir.Function {
	var out []*ir.Function
	seen := map[*ir.Function]bool{}
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			for _, t := range g.CalleesOf[s] {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
	}
	return out
}

// computeSCCs runs Tarjan's algorithm over the function graph.
func (g *Graph) computeSCCs() {
	index := map[*ir.Function]int{}
	low := map[*ir.Function]int{}
	onStack := map[*ir.Function]bool{}
	var stack []*ir.Function
	counter := 0

	var strongconnect func(f *ir.Function)
	strongconnect = func(f *ir.Function) {
		index[f] = counter
		low[f] = counter
		counter++
		stack = append(stack, f)
		onStack[f] = true
		selfLoop := false
		for _, w := range g.succs(f) {
			if w == f {
				selfLoop = true
				continue
			}
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[f] {
					low[f] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[f] {
					low[f] = index[w]
				}
			}
		}
		if low[f] == index[f] {
			id := g.numSCCs
			g.numSCCs++
			size := 0
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				g.SCCOf[w] = id
				size++
				if w == f {
					break
				}
			}
			g.sccRecursive = append(g.sccRecursive, size > 1 || selfLoop)
		}
	}
	for _, f := range g.Prog.Funcs {
		if _, seen := index[f]; !seen {
			strongconnect(f)
		}
	}
}

// InRecursion reports whether f participates in a call-graph cycle.
func (g *Graph) InRecursion(f *ir.Function) bool {
	id, ok := g.SCCOf[f]
	return ok && g.sccRecursive[id]
}

// SameSCC reports whether two functions share a call-graph cycle.
func (g *Graph) SameSCC(a, b *ir.Function) bool {
	ia, oka := g.SCCOf[a]
	ib, okb := g.SCCOf[b]
	return oka && okb && ia == ib && g.sccRecursive[ia]
}

func (g *Graph) computeReachable() {
	if g.Prog.Main == nil {
		return
	}
	var stack []*ir.Function
	stack = append(stack, g.Prog.Main)
	g.Reachable[g.Prog.Main] = true
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.succs(f) {
			if !g.Reachable[w] {
				g.Reachable[w] = true
				stack = append(stack, w)
			}
		}
	}
}

// ReachableFuncs returns reachable functions in declaration order.
func (g *Graph) ReachableFuncs() []*ir.Function {
	var out []*ir.Function
	for _, f := range g.Prog.Funcs {
		if g.Reachable[f] {
			out = append(out, f)
		}
	}
	return out
}

// ---- Contexts ----

// Ctx is an interned calling context (a call string). The zero value is the
// empty context (main's entry).
type Ctx int32

// EmptyCtx is the context of main's entry.
const EmptyCtx Ctx = 0

// ctxEntry records one interned context frame.
type ctxEntry struct {
	parent Ctx
	site   ir.StmtID
	depth  int
}

// Ctxs interns contexts. It is owned by one analysis run and is not
// goroutine-safe.
type Ctxs struct {
	entries []ctxEntry
	index   map[ctxEntry]Ctx
	// MaxDepth bounds call-string length; pushes beyond it keep the context
	// unchanged (sound merging of deep contexts).
	MaxDepth int
}

// DefaultMaxDepth is the call-string depth bound used when the caller does
// not pick one. fsam.Config.Normalize mirrors it so cache keys over a
// canonicalized Config cannot drift from the depth actually used.
const DefaultMaxDepth = 32

// NewCtxs returns a context table with the given depth bound (<=0 means
// DefaultMaxDepth).
func NewCtxs(maxDepth int) *Ctxs {
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	c := &Ctxs{index: map[ctxEntry]Ctx{}, MaxDepth: maxDepth}
	c.entries = append(c.entries, ctxEntry{parent: -1, site: ir.NoStmt, depth: 0})
	return c
}

// Push returns ctx extended with site. Pushing past MaxDepth returns ctx
// unchanged.
func (c *Ctxs) Push(ctx Ctx, site ir.StmtID) Ctx {
	e := ctxEntry{parent: ctx, site: site, depth: c.entries[ctx].depth + 1}
	if e.depth > c.MaxDepth {
		return ctx
	}
	if id, ok := c.index[e]; ok {
		return id
	}
	id := Ctx(len(c.entries))
	c.entries = append(c.entries, e)
	c.index[e] = id
	return id
}

// Pop removes the innermost frame; popping the empty context returns it.
func (c *Ctxs) Pop(ctx Ctx) Ctx {
	if ctx == EmptyCtx {
		return EmptyCtx
	}
	return c.entries[ctx].parent
}

// Peek returns the innermost call site, or ir.NoStmt for the empty context.
func (c *Ctxs) Peek(ctx Ctx) ir.StmtID {
	return c.entries[ctx].site
}

// Depth returns the number of frames in ctx.
func (c *Ctxs) Depth(ctx Ctx) int { return c.entries[ctx].depth }

// Contains reports whether site occurs anywhere in ctx (used to detect
// context cycles when the depth bound is hit).
func (c *Ctxs) Contains(ctx Ctx, site ir.StmtID) bool {
	for ctx != EmptyCtx {
		if c.entries[ctx].site == site {
			return true
		}
		ctx = c.entries[ctx].parent
	}
	return false
}

// Sites returns the call-site IDs outermost-first.
func (c *Ctxs) Sites(ctx Ctx) []ir.StmtID {
	var rev []ir.StmtID
	for ctx != EmptyCtx {
		rev = append(rev, c.entries[ctx].site)
		ctx = c.entries[ctx].parent
	}
	out := make([]ir.StmtID, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// String renders ctx as [s1, s2, ...] with statement IDs.
func (c *Ctxs) String(ctx Ctx) string {
	sites := c.Sites(ctx)
	parts := make([]string, len(sites))
	for i, s := range sites {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Len returns the number of interned contexts.
func (c *Ctxs) Len() int { return len(c.entries) }

// SortedFuncs returns functions sorted by name (deterministic iteration
// helper for analyses that range over map-based graphs).
func SortedFuncs(fs map[*ir.Function]bool) []*ir.Function {
	out := make([]*ir.Function, 0, len(fs))
	for f := range fs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

package callgraph_test

import (
	"testing"

	"repro/internal/andersen"
	"repro/internal/callgraph"
	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/irbuild"
)

func build(t *testing.T, src string) *callgraph.Graph {
	t.Helper()
	f, errs := parser.Parse("t.mc", src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	prog, err := irbuild.Build(f)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return callgraph.Build(andersen.Analyze(prog))
}

func fn(t *testing.T, g *callgraph.Graph, name string) *ir.Function {
	t.Helper()
	f := g.Prog.FuncByName[name]
	if f == nil {
		t.Fatalf("no function %s", name)
	}
	return f
}

func TestDirectCallEdges(t *testing.T) {
	g := build(t, `
void leaf() { }
void mid() { leaf(); }
int main() { mid(); return 0; }
`)
	leaf, mid, main := fn(t, g, "leaf"), fn(t, g, "mid"), fn(t, g, "main")
	if len(g.CallersOf[leaf]) != 1 || len(g.CallersOf[mid]) != 1 {
		t.Error("caller counts")
	}
	if !g.Reachable[leaf] || !g.Reachable[mid] || !g.Reachable[main] {
		t.Error("reachability")
	}
}

func TestUnreachableFunction(t *testing.T) {
	g := build(t, `
void never() { }
int main() { return 0; }
`)
	if g.Reachable[fn(t, g, "never")] {
		t.Error("never is unreachable")
	}
	if len(g.ReachableFuncs()) != 1 {
		t.Errorf("reachable funcs = %v", g.ReachableFuncs())
	}
}

func TestMutualRecursionSCC(t *testing.T) {
	g := build(t, `
void a(int n);
void b(int n) { a(n - 1); }
void a(int n) { if (n > 0) { b(n); } }
int main() { a(3); return 0; }
`)
	a, b, main := fn(t, g, "a"), fn(t, g, "b"), fn(t, g, "main")
	if !g.SameSCC(a, b) {
		t.Error("a and b must share an SCC")
	}
	if !g.InRecursion(a) || !g.InRecursion(b) {
		t.Error("a, b recursive")
	}
	if g.InRecursion(main) || g.SameSCC(main, a) {
		t.Error("main is not recursive")
	}
}

func TestSelfRecursion(t *testing.T) {
	g := build(t, `
void r(int n) { if (n > 0) { r(n - 1); } }
int main() { r(2); return 0; }
`)
	if !g.InRecursion(fn(t, g, "r")) {
		t.Error("self recursion")
	}
}

func TestForkReachability(t *testing.T) {
	g := build(t, `
void worker(void *a) { }
int main() {
	thread_t t;
	t = spawn(worker, NULL);
	join(t);
	return 0;
}
`)
	if !g.Reachable[fn(t, g, "worker")] {
		t.Error("fork routine must be reachable")
	}
}

func TestContexts(t *testing.T) {
	ctxs := callgraph.NewCtxs(0)
	c1 := ctxs.Push(callgraph.EmptyCtx, 5)
	c2 := ctxs.Push(c1, 9)
	if ctxs.Depth(c2) != 2 || ctxs.Peek(c2) != 9 {
		t.Error("depth/peek")
	}
	if ctxs.Pop(c2) != c1 || ctxs.Pop(c1) != callgraph.EmptyCtx {
		t.Error("pop")
	}
	if ctxs.Pop(callgraph.EmptyCtx) != callgraph.EmptyCtx {
		t.Error("pop empty")
	}
	// Interning: same pushes give identical IDs.
	if ctxs.Push(c1, 9) != c2 {
		t.Error("interning")
	}
	if !ctxs.Contains(c2, 5) || ctxs.Contains(c2, 7) {
		t.Error("contains")
	}
	sites := ctxs.Sites(c2)
	if len(sites) != 2 || sites[0] != 5 || sites[1] != 9 {
		t.Errorf("sites = %v", sites)
	}
	if ctxs.String(c2) != "[5,9]" {
		t.Errorf("string = %s", ctxs.String(c2))
	}
}

func TestContextDepthCap(t *testing.T) {
	ctxs := callgraph.NewCtxs(2)
	c := callgraph.EmptyCtx
	c = ctxs.Push(c, 1)
	c = ctxs.Push(c, 2)
	capped := ctxs.Push(c, 3)
	if capped != c {
		t.Error("push past cap must be identity")
	}
	if ctxs.Depth(c) != 2 {
		t.Error("depth capped")
	}
}

package pts_test

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/pts"
)

// small caps generated IDs so sets collide often.
func small(xs []uint32) []uint32 {
	out := make([]uint32, len(xs))
	for i, x := range xs {
		out[i] = x % 300
	}
	return out
}

// asMap builds a reference set.
func asMap(xs []uint32) map[uint32]bool {
	m := map[uint32]bool{}
	for _, x := range xs {
		m[x] = true
	}
	return m
}

func TestAddHasRemove(t *testing.T) {
	s := &pts.Set{}
	if s.Has(5) || s.Len() != 0 || !s.IsEmpty() {
		t.Fatal("zero set must be empty")
	}
	if !s.Add(5) || s.Add(5) {
		t.Fatal("Add must report change exactly once")
	}
	if !s.Has(5) || s.Len() != 1 {
		t.Fatal("Has/Len after Add")
	}
	if !s.Remove(5) || s.Remove(5) {
		t.Fatal("Remove must report change exactly once")
	}
	if s.Has(5) || !s.IsEmpty() {
		t.Fatal("set must be empty after Remove")
	}
}

func TestAddMatchesReference(t *testing.T) {
	f := func(xs []uint32) bool {
		xs = small(xs)
		s := pts.FromSlice(xs)
		ref := asMap(xs)
		if s.Len() != len(ref) {
			return false
		}
		for x := range ref {
			if !s.Has(x) {
				return false
			}
		}
		ok := true
		s.ForEach(func(x uint32) {
			if !ref[x] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestElemsSorted(t *testing.T) {
	f := func(xs []uint32) bool {
		s := pts.FromSlice(small(xs))
		elems := s.Elems()
		return sort.SliceIsSorted(elems, func(i, j int) bool { return elems[i] < elems[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionIsUnion(t *testing.T) {
	f := func(a, b []uint32) bool {
		a, b = small(a), small(b)
		s := pts.FromSlice(a)
		s.UnionWith(pts.FromSlice(b))
		ref := asMap(append(append([]uint32{}, a...), b...))
		if s.Len() != len(ref) {
			return false
		}
		for x := range ref {
			if !s.Has(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionWithReportsChange(t *testing.T) {
	f := func(a, b []uint32) bool {
		a, b = small(a), small(b)
		s := pts.FromSlice(a)
		t2 := pts.FromSlice(b)
		changed := s.Copy().UnionWith(t2)
		return changed == !t2.SubsetOf(pts.FromSlice(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionDiffIsExactlyNewElements(t *testing.T) {
	f := func(a, b []uint32) bool {
		a, b = small(a), small(b)
		s := pts.FromSlice(a)
		base := asMap(a)
		diff := s.UnionDiff(pts.FromSlice(b))
		// diff must contain exactly the elements of b not in a.
		want := map[uint32]bool{}
		for _, x := range b {
			if !base[x] {
				want[x] = true
			}
		}
		if diff == nil {
			return len(want) == 0
		}
		if diff.Len() != len(want) {
			return false
		}
		ok := true
		diff.ForEach(func(x uint32) {
			if !want[x] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectMatchesReference(t *testing.T) {
	f := func(a, b []uint32) bool {
		a, b = small(a), small(b)
		sa, sb := pts.FromSlice(a), pts.FromSlice(b)
		inter := sa.Intersect(sb)
		ra, rb := asMap(a), asMap(b)
		for x := range ra {
			if rb[x] != inter.Has(x) {
				return false
			}
		}
		if sa.IntersectsWith(sb) != (inter.Len() > 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubsetAndEqual(t *testing.T) {
	f := func(a, b []uint32) bool {
		a, b = small(a), small(b)
		sa, sb := pts.FromSlice(a), pts.FromSlice(b)
		union := sa.Copy()
		union.UnionWith(sb)
		if !sa.SubsetOf(union) || !sb.SubsetOf(union) {
			return false
		}
		if sa.Equal(sb) != (sa.SubsetOf(sb) && sb.SubsetOf(sa)) {
			return false
		}
		return sa.Equal(sa.Copy())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSingle(t *testing.T) {
	s := &pts.Set{}
	if _, ok := s.Single(); ok {
		t.Error("empty set is not single")
	}
	s.Add(77)
	if v, ok := s.Single(); !ok || v != 77 {
		t.Errorf("Single = %v,%v want 77,true", v, ok)
	}
	s.Add(300)
	if _, ok := s.Single(); ok {
		t.Error("two-element set is not single")
	}
}

func TestSingleAcrossWords(t *testing.T) {
	// Two elements in different 64-bit words must not be "single".
	s := &pts.Set{}
	s.Add(1)
	s.Add(1000)
	if _, ok := s.Single(); ok {
		t.Error("elements in different words")
	}
	s.Remove(1)
	if v, ok := s.Single(); !ok || v != 1000 {
		t.Errorf("Single = %v,%v want 1000,true", v, ok)
	}
}

func TestClearAndCopyIndependence(t *testing.T) {
	s := pts.FromSlice([]uint32{1, 2, 3})
	c := s.Copy()
	s.Clear()
	if !s.IsEmpty() {
		t.Error("Clear must empty the set")
	}
	if c.Len() != 3 {
		t.Error("Copy must be independent")
	}
}

func TestRemoveCompaction(t *testing.T) {
	s := &pts.Set{}
	for i := uint32(0); i < 500; i += 64 {
		s.Add(i)
	}
	for i := uint32(0); i < 500; i += 64 {
		if !s.Remove(i) {
			t.Fatalf("Remove(%d)", i)
		}
	}
	if !s.IsEmpty() {
		t.Error("set must be empty after removing everything")
	}
}

func TestStringFormat(t *testing.T) {
	s := pts.FromSlice([]uint32{3, 1})
	if got := s.String(); got != "{1, 3}" {
		t.Errorf("String = %q", got)
	}
}

func TestBytesGrows(t *testing.T) {
	s := &pts.Set{}
	b0 := s.Bytes()
	for i := uint32(0); i < 1000; i += 64 {
		s.Add(i)
	}
	if s.Bytes() <= b0 {
		t.Error("Bytes must grow with content")
	}
}

// TestRandomizedOpsAgainstMap drives a long random op sequence against a
// reference map.
func TestRandomizedOpsAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := &pts.Set{}
	ref := map[uint32]bool{}
	for i := 0; i < 20000; i++ {
		x := uint32(rng.Intn(2048))
		switch rng.Intn(3) {
		case 0:
			if s.Add(x) == ref[x] {
				t.Fatalf("Add(%d) change mismatch", x)
			}
			ref[x] = true
		case 1:
			if s.Remove(x) != ref[x] {
				t.Fatalf("Remove(%d) change mismatch", x)
			}
			delete(ref, x)
		default:
			if s.Has(x) != ref[x] {
				t.Fatalf("Has(%d) mismatch", x)
			}
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("final Len %d != %d", s.Len(), len(ref))
	}
}

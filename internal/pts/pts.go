// Package pts provides the points-to set representation shared by every
// pointer analysis in this repository: a sorted sparse bit vector over
// 64-bit words, supporting the diff-propagation operations the solvers need
// (union-with-changed, difference, iteration) plus exact byte accounting so
// the benchmark harness can report memory usage the way the paper does.
package pts

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// wordBits is the number of element IDs covered by one word.
const wordBits = 64

// Set is a sparse bit vector of uint32 element IDs. The zero value is an
// empty set ready to use.
type Set struct {
	// base[i]*64 is the first ID covered by words[i]; base is strictly
	// increasing and words[i] is never zero.
	base  []uint32
	words []uint64
}

// Len returns the number of elements.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no elements.
func (s *Set) IsEmpty() bool { return len(s.words) == 0 }

// find returns the index of block b in base, or the insertion point with
// ok=false.
func (s *Set) find(b uint32) (int, bool) {
	lo, hi := 0, len(s.base)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.base[mid] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.base) && s.base[lo] == b
}

// Has reports whether x is in the set.
func (s *Set) Has(x uint32) bool {
	i, ok := s.find(x / wordBits)
	return ok && s.words[i]&(1<<(x%wordBits)) != 0
}

// Add inserts x, reporting whether the set changed.
func (s *Set) Add(x uint32) bool {
	b := x / wordBits
	bit := uint64(1) << (x % wordBits)
	i, ok := s.find(b)
	if ok {
		if s.words[i]&bit != 0 {
			return false
		}
		s.words[i] |= bit
		return true
	}
	s.base = append(s.base, 0)
	copy(s.base[i+1:], s.base[i:])
	s.base[i] = b
	s.words = append(s.words, 0)
	copy(s.words[i+1:], s.words[i:])
	s.words[i] = bit
	return true
}

// Remove deletes x, reporting whether the set changed.
func (s *Set) Remove(x uint32) bool {
	b := x / wordBits
	bit := uint64(1) << (x % wordBits)
	i, ok := s.find(b)
	if !ok || s.words[i]&bit == 0 {
		return false
	}
	s.words[i] &^= bit
	if s.words[i] == 0 {
		s.base = append(s.base[:i], s.base[i+1:]...)
		s.words = append(s.words[:i], s.words[i+1:]...)
	}
	return true
}

// UnionWith adds every element of t to s, reporting whether s changed.
func (s *Set) UnionWith(t *Set) bool {
	if t == nil || len(t.words) == 0 {
		return false
	}
	changed := false
	// Fast path: merge sorted block lists.
	nb := make([]uint32, 0, len(s.base)+len(t.base))
	nw := make([]uint64, 0, len(s.words)+len(t.words))
	i, j := 0, 0
	for i < len(s.base) && j < len(t.base) {
		switch {
		case s.base[i] < t.base[j]:
			nb = append(nb, s.base[i])
			nw = append(nw, s.words[i])
			i++
		case s.base[i] > t.base[j]:
			nb = append(nb, t.base[j])
			nw = append(nw, t.words[j])
			changed = true
			j++
		default:
			merged := s.words[i] | t.words[j]
			if merged != s.words[i] {
				changed = true
			}
			nb = append(nb, s.base[i])
			nw = append(nw, merged)
			i++
			j++
		}
	}
	for ; i < len(s.base); i++ {
		nb = append(nb, s.base[i])
		nw = append(nw, s.words[i])
	}
	for ; j < len(t.base); j++ {
		nb = append(nb, t.base[j])
		nw = append(nw, t.words[j])
		changed = true
	}
	if changed {
		s.base, s.words = nb, nw
	}
	return changed
}

// UnionDiff adds every element of t to s and returns the set of elements
// that were newly added (nil when nothing changed). This is the primitive
// behind difference (wave) propagation in the Andersen solver.
func (s *Set) UnionDiff(t *Set) *Set {
	if t == nil || len(t.words) == 0 {
		return nil
	}
	var diff *Set
	for j := range t.base {
		b := t.base[j]
		tw := t.words[j]
		i, ok := s.find(b)
		var added uint64
		if ok {
			added = tw &^ s.words[i]
			if added == 0 {
				continue
			}
			s.words[i] |= tw
		} else {
			added = tw
			s.base = append(s.base, 0)
			copy(s.base[i+1:], s.base[i:])
			s.base[i] = b
			s.words = append(s.words, 0)
			copy(s.words[i+1:], s.words[i:])
			s.words[i] = tw
		}
		if diff == nil {
			diff = &Set{}
		}
		diff.base = append(diff.base, b)
		diff.words = append(diff.words, added)
	}
	return diff
}

// IntersectsWith reports whether s and t share at least one element.
func (s *Set) IntersectsWith(t *Set) bool {
	if t == nil {
		return false
	}
	i, j := 0, 0
	for i < len(s.base) && j < len(t.base) {
		switch {
		case s.base[i] < t.base[j]:
			i++
		case s.base[i] > t.base[j]:
			j++
		default:
			if s.words[i]&t.words[j] != 0 {
				return true
			}
			i++
			j++
		}
	}
	return false
}

// Intersect returns the intersection of s and t as a new set.
func (s *Set) Intersect(t *Set) *Set {
	out := &Set{}
	if t == nil {
		return out
	}
	i, j := 0, 0
	for i < len(s.base) && j < len(t.base) {
		switch {
		case s.base[i] < t.base[j]:
			i++
		case s.base[i] > t.base[j]:
			j++
		default:
			if w := s.words[i] & t.words[j]; w != 0 {
				out.base = append(out.base, s.base[i])
				out.words = append(out.words, w)
			}
			i++
			j++
		}
	}
	return out
}

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	if t == nil {
		return s.IsEmpty()
	}
	if len(s.words) != len(t.words) {
		return false
	}
	for i := range s.words {
		if s.base[i] != t.base[i] || s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	if t == nil {
		return s.IsEmpty()
	}
	j := 0
	for i := range s.base {
		for j < len(t.base) && t.base[j] < s.base[i] {
			j++
		}
		if j == len(t.base) || t.base[j] != s.base[i] || s.words[i]&^t.words[j] != 0 {
			return false
		}
	}
	return true
}

// Difference returns s \ t as a new set.
func (s *Set) Difference(t *Set) *Set {
	if t == nil || len(t.words) == 0 {
		return s.Copy()
	}
	out := &Set{}
	j := 0
	for i := range s.base {
		for j < len(t.base) && t.base[j] < s.base[i] {
			j++
		}
		w := s.words[i]
		if j < len(t.base) && t.base[j] == s.base[i] {
			w &^= t.words[j]
		}
		if w != 0 {
			out.base = append(out.base, s.base[i])
			out.words = append(out.words, w)
		}
	}
	return out
}

// Hash returns a content hash (FNV-1a over the block list). Equal sets hash
// equal, which is what the engine's hash-consing interner keys on.
func (s *Set) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i, w := range s.words {
		h ^= uint64(s.base[i])
		h *= prime64
		h ^= w
		h *= prime64
	}
	return h
}

// Copy returns an independent copy of s.
func (s *Set) Copy() *Set {
	c := &Set{}
	if len(s.words) > 0 {
		c.base = append([]uint32(nil), s.base...)
		c.words = append([]uint64(nil), s.words...)
	}
	return c
}

// Clear empties the set, retaining capacity.
func (s *Set) Clear() {
	s.base = s.base[:0]
	s.words = s.words[:0]
}

// ForEach calls f on every element in ascending order.
func (s *Set) ForEach(f func(uint32)) {
	for i, w := range s.words {
		base := s.base[i] * wordBits
		for w != 0 {
			f(base + uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// Elems returns the elements in ascending order.
func (s *Set) Elems() []uint32 {
	out := make([]uint32, 0, s.Len())
	s.ForEach(func(x uint32) { out = append(out, x) })
	return out
}

// Single returns the sole element when Len()==1.
func (s *Set) Single() (uint32, bool) {
	if len(s.words) != 1 || bits.OnesCount64(s.words[0]) != 1 {
		return 0, false
	}
	return s.base[0]*wordBits + uint32(bits.TrailingZeros64(s.words[0])), true
}

// Bytes returns the approximate heap footprint of the set in bytes,
// counting the two backing arrays and the struct header. This is the unit
// the benchmark harness aggregates for memory reporting.
func (s *Set) Bytes() uint64 {
	return 48 + uint64(cap(s.base))*4 + uint64(cap(s.words))*8
}

// String renders the set as {a, b, c} for debugging.
func (s *Set) String() string {
	elems := s.Elems()
	parts := make([]string, len(elems))
	for i, e := range elems {
		parts[i] = fmt.Sprintf("%d", e)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// FromSlice builds a set from arbitrary-order IDs.
func FromSlice(xs []uint32) *Set {
	sorted := append([]uint32(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := &Set{}
	for _, x := range sorted {
		s.Add(x)
	}
	return s
}

package pts_test

// Property tests pitting Set (and the operations the engine interner relies
// on — Difference, Hash, changed flags) against a map[uint32]bool reference
// model. These complement pts_test.go: here every property is phrased over
// randomly generated inputs via testing/quick or a seeded random op stream.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pts"
)

func TestDifferenceMatchesReference(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		xs, ys = small(xs), small(ys)
		s, u := pts.FromSlice(xs), pts.FromSlice(ys)
		d := s.Difference(u)
		ref := asMap(xs)
		for y := range asMap(ys) {
			delete(ref, y)
		}
		if d.Len() != len(ref) {
			return false
		}
		ok := true
		d.ForEach(func(x uint32) {
			if !ref[x] {
				ok = false
			}
		})
		// Difference must not mutate its operands.
		return ok && s.Len() == len(asMap(xs)) && u.Len() == len(asMap(ys))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDifferenceOfSelfAndNil(t *testing.T) {
	f := func(xs []uint32) bool {
		s := pts.FromSlice(small(xs))
		if !s.Difference(s).IsEmpty() {
			return false
		}
		d := s.Difference(nil)
		return d.Equal(s) && d != s // a copy, not the receiver
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashEqualSetsHashEqual(t *testing.T) {
	f := func(xs []uint32) bool {
		xs = small(xs)
		a := pts.FromSlice(xs)
		// Build b by inserting in reverse order: same content, different
		// construction history.
		b := &pts.Set{}
		for i := len(xs) - 1; i >= 0; i-- {
			b.Add(xs[i])
		}
		return a.Equal(b) && a.Hash() == b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashRarelyCollides(t *testing.T) {
	// Not a correctness requirement (the interner handles collisions), but a
	// hash that collapses distinct small sets would degrade it to a list.
	seen := map[uint64]*pts.Set{}
	rng := rand.New(rand.NewSource(7))
	collisions := 0
	for i := 0; i < 2000; i++ {
		s := &pts.Set{}
		for j := 0; j < rng.Intn(8); j++ {
			s.Add(uint32(rng.Intn(512)))
		}
		h := s.Hash()
		if prev, ok := seen[h]; ok && !prev.Equal(s) {
			collisions++
		}
		seen[h] = s
	}
	if collisions > 2 {
		t.Fatalf("%d hash collisions among 2000 small random sets", collisions)
	}
}

// TestModelBasedOps drives a Set and a map model through a long random
// stream of Add / UnionWith / UnionDiff / Difference operations, checking
// element agreement, ForEach ordering and the changed flags at every step.
func TestModelBasedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := &pts.Set{}
	model := map[uint32]bool{}

	check := func(step int) {
		if s.Len() != len(model) {
			t.Fatalf("step %d: Len=%d model=%d", step, s.Len(), len(model))
		}
		prev := int64(-1)
		s.ForEach(func(x uint32) {
			if int64(x) <= prev {
				t.Fatalf("step %d: ForEach out of order (%d after %d)", step, x, prev)
			}
			prev = int64(x)
			if !model[x] {
				t.Fatalf("step %d: set has %d, model does not", step, x)
			}
		})
	}

	randomSet := func() (*pts.Set, map[uint32]bool) {
		o := &pts.Set{}
		om := map[uint32]bool{}
		for j := 0; j < rng.Intn(12); j++ {
			x := uint32(rng.Intn(400))
			o.Add(x)
			om[x] = true
		}
		return o, om
	}

	for step := 0; step < 4000; step++ {
		switch rng.Intn(4) {
		case 0: // Add with changed flag
			x := uint32(rng.Intn(400))
			changed := s.Add(x)
			if changed == model[x] {
				t.Fatalf("step %d: Add(%d) changed=%v but model had=%v", step, x, changed, model[x])
			}
			model[x] = true
		case 1: // UnionWith with changed flag
			o, om := randomSet()
			wouldChange := false
			for x := range om {
				if !model[x] {
					wouldChange = true
				}
			}
			if changed := s.UnionWith(o); changed != wouldChange {
				t.Fatalf("step %d: UnionWith changed=%v want %v", step, changed, wouldChange)
			}
			for x := range om {
				model[x] = true
			}
		case 2: // UnionDiff returns exactly the new elements
			o, om := randomSet()
			want := map[uint32]bool{}
			for x := range om {
				if !model[x] {
					want[x] = true
				}
			}
			diff := s.UnionDiff(o)
			got := map[uint32]bool{}
			if diff != nil {
				diff.ForEach(func(x uint32) { got[x] = true })
			}
			if len(got) != len(want) {
				t.Fatalf("step %d: UnionDiff returned %d elems, want %d", step, len(got), len(want))
			}
			for x := range want {
				if !got[x] {
					t.Fatalf("step %d: UnionDiff missing %d", step, x)
				}
			}
			for x := range om {
				model[x] = true
			}
		case 3: // Difference is pure
			o, om := randomSet()
			d := s.Difference(o)
			for x := range model {
				if om[x] && d.Has(x) {
					t.Fatalf("step %d: Difference kept removed elem %d", step, x)
				}
				if !om[x] && !d.Has(x) {
					t.Fatalf("step %d: Difference dropped kept elem %d", step, x)
				}
			}
		}
		check(step)
	}
}

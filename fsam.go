// Package fsam is the public API of this repository: a reproduction of
// FSAM, the sparse flow-sensitive pointer analysis for multithreaded C
// programs of Sui, Di and Xue (CGO 2016), together with the NonSparse
// baseline (an RR-style iterative data-flow analysis over parallel regions
// discovered by a PCG-style procedure-level MHP analysis) the paper
// compares against.
//
// Programs are written in MiniC, a C subset with Pthreads-like primitives
// (spawn/join/lock/unlock); see the examples directory for the dialect. A
// typical use:
//
//	res, err := fsam.AnalyzeSource("prog.mc", src, fsam.Config{})
//	if err != nil { ... }
//	pts, _ := res.PointsToGlobal("c")   // e.g. ["y", "z"]
//
// The Config ablation switches correspond to the paper's Figure 12
// configurations (No-Interleaving, No-Value-Flow, No-Lock).
package fsam

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/ir"
	"repro/internal/leak"
	"repro/internal/locks"
	"repro/internal/mhp"
	"repro/internal/pcg"
	"repro/internal/pipeline"
	"repro/internal/pts"
	"repro/internal/race"
	"repro/internal/vfg"
)

// Config selects analysis variants.
type Config struct {
	// NoInterleaving replaces the flow- and context-sensitive interleaving
	// analysis with the coarse procedure-level PCG MHP (Figure 12).
	NoInterleaving bool
	// NoValueFlow disables the aliasing premise of [THREAD-VF] (Figure 12).
	NoValueFlow bool
	// NoLock disables non-interference filtering (Figure 12).
	NoLock bool
	// CtxDepth bounds call-string contexts (<=0 uses the default).
	CtxDepth int
	// Sequential forces the pass manager to run phases one at a time in
	// topological order instead of overlapping independent phases
	// (interleaving ∥ locks). Results are identical either way; the switch
	// exists for determinism tests and scheduling diagnostics.
	Sequential bool
}

// PhaseTimes records wall-clock duration of each pipeline stage.
type PhaseTimes struct {
	Compile     time.Duration
	PreAnalysis time.Duration
	ThreadModel time.Duration
	Interleave  time.Duration
	LockSpans   time.Duration
	DefUse      time.Duration
	Sparse      time.Duration
}

// Total sums all phases.
func (p PhaseTimes) Total() time.Duration {
	return p.Compile + p.PreAnalysis + p.ThreadModel + p.Interleave +
		p.LockSpans + p.DefUse + p.Sparse
}

// Stats summarizes an analysis run.
type Stats struct {
	Times PhaseTimes
	// Bytes is the resident footprint of the analysis' data structures
	// (points-to sets, def-use graph, interference facts). Points-to
	// storage is interned, so each distinct set is counted once.
	Bytes uint64
	// UniqueSets is the number of distinct interned points-to sets the
	// final results reference; SetRefs is the number of slots referencing
	// them. DedupRatio is the byte ratio a private-copy representation
	// would have cost over the interned one (> 1 means sharing won).
	UniqueSets int
	SetRefs    int
	DedupRatio float64
	// PrePops and SolvePops count priority-worklist pops in the
	// pre-analysis and the main (sparse or baseline) solver.
	PrePops   int
	SolvePops int
	// Threads is the number of abstract threads (including main).
	Threads int
	// DefUseEdges counts def-use edges (ObliviousEdges + ThreadEdges).
	DefUseEdges    int
	ObliviousEdges int
	ThreadEdges    int
	LockSpans      int
	Iterations     int
	Stmts          int
}

// Analysis is a completed FSAM run.
type Analysis struct {
	Prog   *ir.Program
	Base   *pipeline.Base
	MHP    *mhp.Result   // nil under NoInterleaving
	PCG    *pcg.Result   // non-nil under NoInterleaving
	Locks  *locks.Result // nil under NoLock
	Graph  *vfg.Graph
	Result *core.Result
	Stats  Stats
}

// AnalyzeSource parses, compiles and analyzes MiniC source.
func AnalyzeSource(name, src string, cfg Config) (*Analysis, error) {
	return AnalyzeSourceCtx(context.Background(), name, src, cfg)
}

// AnalyzeSourceCtx is AnalyzeSource under a context: the compile phase
// joins the phase DAG (so compile time is measured directly, not derived
// by subtraction) and the whole run honors ctx's deadline. On
// cancellation it returns the partially-populated Analysis alongside a
// *pipeline.PhaseError wrapping ctx.Err().
func AnalyzeSourceCtx(ctx context.Context, name, src string, cfg Config) (*Analysis, error) {
	a, err := runFSAM(ctx, cfg, fsamPhases(cfg, name, src, true), pipeline.NewState())
	var pe *pipeline.PhaseError
	if errors.As(err, &pe) && pe.Phase == phaseCompile {
		return nil, pe.Err // a source error, not an analysis failure
	}
	return a, err
}

// AnalyzeProgram runs FSAM over an already-built program.
func AnalyzeProgram(prog *ir.Program, cfg Config) *Analysis {
	a, err := AnalyzeProgramCtx(context.Background(), prog, cfg)
	if err != nil {
		// Without a cancellable context no phase can fail; reaching here
		// means the DAG itself is malformed.
		panic(err)
	}
	return a
}

// AnalyzeProgramCtx runs FSAM over an already-built program under a
// context. The pass manager schedules the phases (overlapping the
// interleaving and lock analyses unless cfg.Sequential) and every
// fixpoint loop polls ctx, so an expired deadline surfaces promptly as a
// *pipeline.PhaseError; the returned Analysis then holds the phases that
// did complete, with their times and bytes in Stats.
func AnalyzeProgramCtx(ctx context.Context, prog *ir.Program, cfg Config) (*Analysis, error) {
	st := pipeline.NewState()
	st.Put(slotProg, prog)
	return runFSAM(ctx, cfg, fsamPhases(cfg, "", "", false), st)
}

// runFSAM schedules the phase DAG and assembles the facade view from the
// final State and the manager's Report.
func runFSAM(ctx context.Context, cfg Config, phases []pipeline.Phase, st *pipeline.State) (*Analysis, error) {
	mgr, err := newManager(cfg, phases)
	if err != nil {
		return nil, err
	}
	rep, runErr := mgr.Run(ctx, st)
	a := &Analysis{
		Prog:   pipeline.Get[*ir.Program](st, slotProg),
		Base:   pipeline.Get[*pipeline.Base](st, slotBase),
		MHP:    pipeline.Get[*mhp.Result](st, slotMHP),
		PCG:    pipeline.Get[*pcg.Result](st, slotPCG),
		Locks:  pipeline.Get[*locks.Result](st, slotLocks),
		Graph:  pipeline.Get[*vfg.Graph](st, slotVFG),
		Result: pipeline.Get[*core.Result](st, slotResult),
	}
	a.fillStats(rep)
	return a, runErr
}

// fillStats maps the manager's per-phase Report onto the facade Stats and
// derives the result-shape counters. Nil guards keep it usable for the
// partial Analysis returned on cancellation.
func (a *Analysis) fillStats(rep *pipeline.Report) {
	t := &a.Stats.Times
	t.Compile = rep.Time(phaseCompile)
	t.PreAnalysis = rep.Time(phasePre)
	t.ThreadModel = rep.Time(phaseModel)
	t.Interleave = rep.Time(phaseIL)
	t.LockSpans = rep.Time(phaseLocks)
	t.DefUse = rep.Time(phaseDefUse)
	t.Sparse = rep.Time(phaseSparse)
	a.Stats.Bytes = rep.TotalBytes()
	if a.Prog != nil {
		a.Stats.Stmts = a.Prog.NumStmts()
	}
	if a.Base != nil {
		a.Stats.PrePops = a.Base.Pre.Pops
		if a.Base.Model != nil {
			a.Stats.Threads = len(a.Base.Model.Threads)
		}
	}
	if a.Locks != nil {
		a.Stats.LockSpans = a.Locks.NumSpans()
	}
	if a.Graph != nil {
		a.Stats.ObliviousEdges = a.Graph.ObliviousEdges
		a.Stats.ThreadEdges = a.Graph.ThreadEdges
		a.Stats.DefUseEdges = a.Graph.ObliviousEdges + a.Graph.ThreadEdges
	}
	if a.Result != nil {
		a.Stats.Iterations = a.Result.Iterations
		a.Stats.SolvePops = a.Result.Iterations
		rs := a.Result.InternStats()
		if a.Base != nil {
			rs.AddFrom(a.Base.Pre.InternStats())
		}
		a.Stats.UniqueSets = rs.Unique
		a.Stats.SetRefs = rs.Refs
		a.Stats.DedupRatio = rs.DedupRatio()
	}
}

// errNoGlobal builds the shared "no such global" error.
func errNoGlobal(name string) error {
	return fmt.Errorf("no global named %q", name)
}

// GlobalObject resolves a global variable by name.
func (a *Analysis) GlobalObject(name string) (*ir.Object, error) {
	for _, o := range a.Prog.Objects {
		if o.Kind == ir.ObjGlobal && o.Name == name {
			return o, nil
		}
	}
	return nil, errNoGlobal(name)
}

// PointsToGlobal returns the sorted names of the objects that global name
// may point to at program exit (the exit of main, after all handled joins),
// which is the flow-sensitive "final" answer the paper's examples quote.
func (a *Analysis) PointsToGlobal(name string) ([]string, error) {
	obj, err := a.GlobalObject(name)
	if err != nil {
		return nil, err
	}
	return a.names(a.Result.ObjAtExit(a.Prog.Main, obj)), nil
}

// PointsToGlobalAnywhere returns the union of the global's points-to sets
// over every definition in the program (a flow-insensitive view of the
// flow-sensitive result; useful for soundness comparisons).
func (a *Analysis) PointsToGlobalAnywhere(name string) ([]string, error) {
	obj, err := a.GlobalObject(name)
	if err != nil {
		return nil, err
	}
	acc := &pts.Set{}
	for _, n := range a.Graph.Nodes {
		if n.Obj == obj {
			acc.UnionWith(a.Result.PointsToMem(n.ID))
		}
	}
	return a.names(acc), nil
}

// names maps a points-to set to sorted object names.
func (a *Analysis) names(set *pts.Set) []string {
	var out []string
	set.ForEach(func(id uint32) {
		out = append(out, a.Prog.Objects[id].Name)
	})
	sort.Strings(out)
	return out
}

// Races runs the data-race detection client over this analysis' results.
// It requires the precise interleaving analysis (Config.NoInterleaving must
// be false).
func (a *Analysis) Races() ([]*race.Report, error) {
	if a.MHP == nil {
		return nil, fmt.Errorf("race detection requires the interleaving analysis (disable NoInterleaving)")
	}
	d := &race.Detector{
		Model:  a.Base.Model,
		MHP:    a.MHP,
		Locks:  a.Locks,
		Points: a.Result,
	}
	return d.Detect(), nil
}

// Deadlocks runs the lock-order-cycle deadlock detector over this
// analysis' results. It requires both the interleaving analysis and the
// lock analysis (NoInterleaving and NoLock must be false).
func (a *Analysis) Deadlocks() ([]*deadlock.Report, error) {
	if a.MHP == nil {
		return nil, fmt.Errorf("deadlock detection requires the interleaving analysis (disable NoInterleaving)")
	}
	if a.Locks == nil {
		return nil, fmt.Errorf("deadlock detection requires the lock analysis (disable NoLock)")
	}
	d := &deadlock.Detector{Model: a.Base.Model, MHP: a.MHP, Locks: a.Locks}
	return d.Detect(), nil
}

// leakDetector builds the leak client over this analysis' results.
func (a *Analysis) leakDetector() *leak.Detector {
	return &leak.Detector{
		Prog:      a.Prog,
		Points:    a.Result,
		Reachable: a.Base.CG.Reachable,
	}
}

// Leaks runs the memory-leak client: heap allocations neither must-freed
// nor reachable from globals at program exit.
func (a *Analysis) Leaks() []*leak.Report {
	return a.leakDetector().Detect()
}

// LeakAudit evaluates the leak conditions for every reachable allocation
// site (diagnostics).
func (a *Analysis) LeakAudit() []*leak.Report {
	return a.leakDetector().Audit()
}

// AndersenPointsToGlobal returns the pre-analysis (flow-insensitive) result
// for a global, for precision comparisons.
func (a *Analysis) AndersenPointsToGlobal(name string) ([]string, error) {
	obj, err := a.GlobalObject(name)
	if err != nil {
		return nil, err
	}
	return a.names(a.Base.Pre.PointsToObj(obj)), nil
}

// Package fsam is the public API of this repository: a reproduction of
// FSAM, the sparse flow-sensitive pointer analysis for multithreaded C
// programs of Sui, Di and Xue (CGO 2016), together with the NonSparse
// baseline (an RR-style iterative data-flow analysis over parallel regions
// discovered by a PCG-style procedure-level MHP analysis) the paper
// compares against.
//
// Programs are written in MiniC, a C subset with Pthreads-like primitives
// (spawn/join/lock/unlock); see the examples directory for the dialect. A
// typical use:
//
//	res, err := fsam.AnalyzeSource("prog.mc", src, fsam.Config{})
//	if err != nil { ... }
//	pts, _ := res.PointsToGlobal("c")   // e.g. ["y", "z"]
//
// The Config ablation switches correspond to the paper's Figure 12
// configurations (No-Interleaving, No-Value-Flow, No-Lock).
package fsam

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/ir"
	"repro/internal/leak"
	"repro/internal/locks"
	"repro/internal/mhp"
	"repro/internal/pcg"
	"repro/internal/pipeline"
	"repro/internal/pts"
	"repro/internal/race"
	"repro/internal/vfg"
)

// Config selects analysis variants.
type Config struct {
	// NoInterleaving replaces the flow- and context-sensitive interleaving
	// analysis with the coarse procedure-level PCG MHP (Figure 12).
	NoInterleaving bool
	// NoValueFlow disables the aliasing premise of [THREAD-VF] (Figure 12).
	NoValueFlow bool
	// NoLock disables non-interference filtering (Figure 12).
	NoLock bool
	// CtxDepth bounds call-string contexts (<=0 uses the default).
	CtxDepth int
}

// PhaseTimes records wall-clock duration of each pipeline stage.
type PhaseTimes struct {
	Compile     time.Duration
	PreAnalysis time.Duration
	ThreadModel time.Duration
	Interleave  time.Duration
	LockSpans   time.Duration
	DefUse      time.Duration
	Sparse      time.Duration
}

// Total sums all phases.
func (p PhaseTimes) Total() time.Duration {
	return p.Compile + p.PreAnalysis + p.ThreadModel + p.Interleave +
		p.LockSpans + p.DefUse + p.Sparse
}

// Stats summarizes an analysis run.
type Stats struct {
	Times PhaseTimes
	// Bytes is the resident footprint of the analysis' data structures
	// (points-to sets, def-use graph, interference facts). Points-to
	// storage is interned, so each distinct set is counted once.
	Bytes uint64
	// UniqueSets is the number of distinct interned points-to sets the
	// final results reference; SetRefs is the number of slots referencing
	// them. DedupRatio is the byte ratio a private-copy representation
	// would have cost over the interned one (> 1 means sharing won).
	UniqueSets int
	SetRefs    int
	DedupRatio float64
	// PrePops and SolvePops count priority-worklist pops in the
	// pre-analysis and the main (sparse or baseline) solver.
	PrePops   int
	SolvePops int
	// Threads is the number of abstract threads (including main).
	Threads int
	// DefUseEdges counts def-use edges (ObliviousEdges + ThreadEdges).
	DefUseEdges    int
	ObliviousEdges int
	ThreadEdges    int
	LockSpans      int
	Iterations     int
	Stmts          int
}

// Analysis is a completed FSAM run.
type Analysis struct {
	Prog   *ir.Program
	Base   *pipeline.Base
	MHP    *mhp.Result   // nil under NoInterleaving
	PCG    *pcg.Result   // non-nil under NoInterleaving
	Locks  *locks.Result // nil under NoLock
	Graph  *vfg.Graph
	Result *core.Result
	Stats  Stats
}

// AnalyzeSource parses, compiles and analyzes MiniC source.
func AnalyzeSource(name, src string, cfg Config) (*Analysis, error) {
	start := time.Now()
	prog, err := pipeline.Compile(name, src)
	if err != nil {
		return nil, err
	}
	a := AnalyzeProgram(prog, cfg)
	a.Stats.Times.Compile = time.Since(start) - a.Stats.Times.Total()
	return a, nil
}

// AnalyzeProgram runs FSAM over an already-built program.
func AnalyzeProgram(prog *ir.Program, cfg Config) *Analysis {
	a := &Analysis{Prog: prog}

	t0 := time.Now()
	// Pre-analysis + call graph + ICFG + thread model. BuildBase times the
	// thread-model construction itself, so it can be attributed to its own
	// phase rather than folded into PreAnalysis.
	base := pipeline.BuildBase(prog, cfg.CtxDepth)
	a.Base = base
	a.Stats.Times.PreAnalysis = time.Since(t0) - base.ThreadModelTime
	a.Stats.Times.ThreadModel = base.ThreadModelTime

	t0 = time.Now()
	var il *mhp.Result
	var pc *pcg.Result
	if cfg.NoInterleaving {
		pc = pcg.Analyze(base.Model)
	} else {
		il = mhp.Analyze(base.Model)
	}
	a.MHP = il
	a.PCG = pc
	a.Stats.Times.Interleave = time.Since(t0)

	t0 = time.Now()
	var lk *locks.Result
	if !cfg.NoLock {
		lk = locks.Analyze(base.Model)
		a.Stats.LockSpans = lk.NumSpans()
	}
	a.Locks = lk
	a.Stats.Times.LockSpans = time.Since(t0)

	t0 = time.Now()
	g := vfg.BuildWithOptions(base.Model, vfg.Options{
		Interleave:  il,
		PCG:         pc,
		Locks:       lk,
		NoValueFlow: cfg.NoValueFlow,
	})
	a.Graph = g
	a.Stats.Times.DefUse = time.Since(t0)

	t0 = time.Now()
	a.Result = core.Solve(base.Model, g)
	a.Stats.Times.Sparse = time.Since(t0)

	a.Stats.Threads = len(base.Model.Threads)
	a.Stats.ObliviousEdges = g.ObliviousEdges
	a.Stats.ThreadEdges = g.ThreadEdges
	a.Stats.DefUseEdges = g.ObliviousEdges + g.ThreadEdges
	a.Stats.Iterations = a.Result.Iterations
	a.Stats.Stmts = prog.NumStmts()
	a.Stats.Bytes = a.Result.Bytes() + base.Pre.Bytes()
	a.Stats.PrePops = base.Pre.Pops
	a.Stats.SolvePops = a.Result.Iterations
	rs := a.Result.InternStats()
	rs.AddFrom(base.Pre.InternStats())
	a.Stats.UniqueSets = rs.Unique
	a.Stats.SetRefs = rs.Refs
	a.Stats.DedupRatio = rs.DedupRatio()
	if il != nil {
		a.Stats.Bytes += il.Bytes()
	}
	if pc != nil {
		a.Stats.Bytes += pc.Bytes()
	}
	if lk != nil {
		a.Stats.Bytes += lk.Bytes()
	}
	return a
}

// errNoGlobal builds the shared "no such global" error.
func errNoGlobal(name string) error {
	return fmt.Errorf("no global named %q", name)
}

// GlobalObject resolves a global variable by name.
func (a *Analysis) GlobalObject(name string) (*ir.Object, error) {
	for _, o := range a.Prog.Objects {
		if o.Kind == ir.ObjGlobal && o.Name == name {
			return o, nil
		}
	}
	return nil, errNoGlobal(name)
}

// PointsToGlobal returns the sorted names of the objects that global name
// may point to at program exit (the exit of main, after all handled joins),
// which is the flow-sensitive "final" answer the paper's examples quote.
func (a *Analysis) PointsToGlobal(name string) ([]string, error) {
	obj, err := a.GlobalObject(name)
	if err != nil {
		return nil, err
	}
	return a.names(a.Result.ObjAtExit(a.Prog.Main, obj)), nil
}

// PointsToGlobalAnywhere returns the union of the global's points-to sets
// over every definition in the program (a flow-insensitive view of the
// flow-sensitive result; useful for soundness comparisons).
func (a *Analysis) PointsToGlobalAnywhere(name string) ([]string, error) {
	obj, err := a.GlobalObject(name)
	if err != nil {
		return nil, err
	}
	acc := &pts.Set{}
	for _, n := range a.Graph.Nodes {
		if n.Obj == obj {
			acc.UnionWith(a.Result.PointsToMem(n.ID))
		}
	}
	return a.names(acc), nil
}

// names maps a points-to set to sorted object names.
func (a *Analysis) names(set *pts.Set) []string {
	var out []string
	set.ForEach(func(id uint32) {
		out = append(out, a.Prog.Objects[id].Name)
	})
	sort.Strings(out)
	return out
}

// Races runs the data-race detection client over this analysis' results.
// It requires the precise interleaving analysis (Config.NoInterleaving must
// be false).
func (a *Analysis) Races() ([]*race.Report, error) {
	if a.MHP == nil {
		return nil, fmt.Errorf("race detection requires the interleaving analysis (disable NoInterleaving)")
	}
	d := &race.Detector{
		Model:  a.Base.Model,
		MHP:    a.MHP,
		Locks:  a.Locks,
		Points: a.Result,
	}
	return d.Detect(), nil
}

// Deadlocks runs the lock-order-cycle deadlock detector over this
// analysis' results. It requires both the interleaving analysis and the
// lock analysis (NoInterleaving and NoLock must be false).
func (a *Analysis) Deadlocks() ([]*deadlock.Report, error) {
	if a.MHP == nil {
		return nil, fmt.Errorf("deadlock detection requires the interleaving analysis (disable NoInterleaving)")
	}
	if a.Locks == nil {
		return nil, fmt.Errorf("deadlock detection requires the lock analysis (disable NoLock)")
	}
	d := &deadlock.Detector{Model: a.Base.Model, MHP: a.MHP, Locks: a.Locks}
	return d.Detect(), nil
}

// leakDetector builds the leak client over this analysis' results.
func (a *Analysis) leakDetector() *leak.Detector {
	return &leak.Detector{
		Prog:      a.Prog,
		Points:    a.Result,
		Reachable: a.Base.CG.Reachable,
	}
}

// Leaks runs the memory-leak client: heap allocations neither must-freed
// nor reachable from globals at program exit.
func (a *Analysis) Leaks() []*leak.Report {
	return a.leakDetector().Detect()
}

// LeakAudit evaluates the leak conditions for every reachable allocation
// site (diagnostics).
func (a *Analysis) LeakAudit() []*leak.Report {
	return a.leakDetector().Audit()
}

// AndersenPointsToGlobal returns the pre-analysis (flow-insensitive) result
// for a global, for precision comparisons.
func (a *Analysis) AndersenPointsToGlobal(name string) ([]string, error) {
	obj, err := a.GlobalObject(name)
	if err != nil {
		return nil, err
	}
	return a.names(a.Base.Pre.PointsToObj(obj)), nil
}

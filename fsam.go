// Package fsam is the public API of this repository: a reproduction of
// FSAM, the sparse flow-sensitive pointer analysis for multithreaded C
// programs of Sui, Di and Xue (CGO 2016), together with the NonSparse
// baseline (an RR-style iterative data-flow analysis over parallel regions
// discovered by a PCG-style procedure-level MHP analysis) the paper
// compares against.
//
// Programs are written in MiniC, a C subset with Pthreads-like primitives
// (spawn/join/lock/unlock); see the examples directory for the dialect. A
// typical use:
//
//	res, err := fsam.AnalyzeSource("prog.mc", src, fsam.Config{})
//	if err != nil { ... }
//	pts, _ := res.PointsToGlobal("c")   // e.g. ["y", "z"]
//
// The Config ablation switches correspond to the paper's Figure 12
// configurations (No-Interleaving, No-Value-Flow, No-Lock).
package fsam

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/callgraph"
	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/leak"
	"repro/internal/locks"
	"repro/internal/mhp"
	"repro/internal/pcg"
	"repro/internal/pipeline"
	"repro/internal/pts"
	"repro/internal/race"
	"repro/internal/vfg"
)

// Config selects analysis variants.
type Config struct {
	// NoInterleaving replaces the flow- and context-sensitive interleaving
	// analysis with the coarse procedure-level PCG MHP (Figure 12).
	NoInterleaving bool
	// NoValueFlow disables the aliasing premise of [THREAD-VF] (Figure 12).
	NoValueFlow bool
	// NoLock disables non-interference filtering (Figure 12).
	NoLock bool
	// CtxDepth bounds call-string contexts (<=0 uses the default).
	CtxDepth int
	// Sequential forces the pass manager to run phases one at a time in
	// topological order instead of overlapping independent phases
	// (interleaving ∥ locks). Results are identical either way; the switch
	// exists for determinism tests and scheduling diagnostics.
	Sequential bool
	// MemBudgetBytes is a soft budget on the live process heap, polled by
	// every post-pre-analysis fixpoint loop (the pre-analysis is exempt:
	// it is the degradation ladder's safety net). A trip degrades the
	// result down the ladder instead of failing; 0 means unlimited.
	MemBudgetBytes uint64
	// StepLimit bounds the worklist pops of each post-pre-analysis
	// fixpoint loop independently; a trip degrades like a memory trip.
	// 0 means unlimited.
	StepLimit int64
	// NoDegrade disables the precision-degradation ladder: any phase
	// failure (panic, deadline, budget) surfaces as an error alongside
	// the partial Analysis, as in the pre-ladder API.
	NoDegrade bool
}

// Normalize returns cfg with implementation defaults made explicit and
// out-of-range values clamped, so two Configs that would drive identical
// analyses compare (and render) identically. It is the shared
// canonicalization used by the CLIs and by the analysis service's
// content-addressed cache key — keeping them on one helper is what stops
// CLI behavior and cache identity from drifting apart.
func (c Config) Normalize() Config {
	if c.CtxDepth <= 0 {
		c.CtxDepth = callgraph.DefaultMaxDepth
	}
	if c.StepLimit < 0 {
		c.StepLimit = 0
	}
	return c
}

// Canonical renders the normalized Config as a stable, human-readable
// key fragment. Every field that can change analysis results or resource
// behavior appears; adding a Config field without extending Canonical
// would silently alias distinct configurations in a content-addressed
// cache, so keep the two in lockstep.
func (c Config) Canonical() string {
	n := c.Normalize()
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	return fmt.Sprintf("il=%d vf=%d lk=%d ctx=%d seq=%d mem=%d steps=%d nodeg=%d",
		b2i(n.NoInterleaving), b2i(n.NoValueFlow), b2i(n.NoLock),
		n.CtxDepth, b2i(n.Sequential), n.MemBudgetBytes, n.StepLimit, b2i(n.NoDegrade))
}

// Precision labels the tier of the result an Analysis carries, in
// ascending precision. The degradation ladder guarantees every analysis
// of a compilable program lands on at least PrecisionAndersenOnly: FSAM
// is staged so the cheap, sound Andersen pre-analysis always has run
// before anything expensive can fail.
type Precision int

const (
	// PrecisionNone: no usable result (the program did not compile or the
	// pre-analysis itself failed).
	PrecisionNone Precision = iota
	// PrecisionAndersenOnly: only the flow-insensitive pre-analysis
	// completed; points-to queries answer from it.
	PrecisionAndersenOnly
	// PrecisionThreadObliviousFS: sparse flow-sensitive solve over the
	// thread-oblivious def-use graph only (interference phases skipped).
	// Sound for sequential flows; cross-thread value flows are missing.
	PrecisionThreadObliviousFS
	// PrecisionSparseFS: the full FSAM result (under whatever ablations
	// Config selected).
	PrecisionSparseFS
)

func (p Precision) String() string {
	switch p {
	case PrecisionNone:
		return "none"
	case PrecisionAndersenOnly:
		return "andersen-only"
	case PrecisionThreadObliviousFS:
		return "thread-oblivious-fs"
	case PrecisionSparseFS:
		return "sparse-fs"
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

// PhaseTimes records wall-clock duration of each pipeline stage.
type PhaseTimes struct {
	Compile     time.Duration
	PreAnalysis time.Duration
	ThreadModel time.Duration
	Interleave  time.Duration
	LockSpans   time.Duration
	DefUse      time.Duration
	Sparse      time.Duration
}

// Total sums all phases.
func (p PhaseTimes) Total() time.Duration {
	return p.Compile + p.PreAnalysis + p.ThreadModel + p.Interleave +
		p.LockSpans + p.DefUse + p.Sparse
}

// Each visits every phase with its stable name (the pipeline phase names),
// in pipeline order. Consumers that export per-phase durations — the
// service's /metrics endpoint, structured logs — iterate here instead of
// hard-coding the field list.
func (p PhaseTimes) Each(f func(phase string, d time.Duration)) {
	f("compile", p.Compile)
	f("preanalysis", p.PreAnalysis)
	f("threadmodel", p.ThreadModel)
	f("interleave", p.Interleave)
	f("locks", p.LockSpans)
	f("defuse", p.DefUse)
	f("sparse", p.Sparse)
}

// Stats summarizes an analysis run.
type Stats struct {
	Times PhaseTimes
	// Bytes is the resident footprint of the analysis' data structures
	// (points-to sets, def-use graph, interference facts). Points-to
	// storage is interned, so each distinct set is counted once.
	Bytes uint64
	// UniqueSets is the number of distinct interned points-to sets the
	// final results reference; SetRefs is the number of slots referencing
	// them. DedupRatio is the byte ratio a private-copy representation
	// would have cost over the interned one (> 1 means sharing won).
	UniqueSets int
	SetRefs    int
	DedupRatio float64
	// PrePops and SolvePops count priority-worklist pops in the
	// pre-analysis and the main (sparse or baseline) solver.
	PrePops   int
	SolvePops int
	// Threads is the number of abstract threads (including main).
	Threads int
	// DefUseEdges counts def-use edges (ObliviousEdges + ThreadEdges).
	DefUseEdges    int
	ObliviousEdges int
	ThreadEdges    int
	LockSpans      int
	Iterations     int
	Stmts          int
	// Degraded records why the result is below full precision (empty for
	// a PrecisionSparseFS result): the failing phase and its panic,
	// deadline, or budget reason, plus any fallback tier that also failed.
	Degraded string
}

// Analysis is a completed FSAM run. Precision labels the tier the
// degradation ladder landed on; below PrecisionSparseFS, Result and Graph
// may be the thread-oblivious fallback's (PrecisionThreadObliviousFS) or
// nil (PrecisionAndersenOnly, where queries answer from Base.Pre).
type Analysis struct {
	Prog      *ir.Program
	Base      *pipeline.Base
	MHP       *mhp.Result   // nil under NoInterleaving
	PCG       *pcg.Result   // non-nil under NoInterleaving
	Locks     *locks.Result // nil under NoLock
	Graph     *vfg.Graph
	Result    *core.Result
	Precision Precision
	Stats     Stats

	// SourceName is the file name diagnostics are attributed to (set by
	// AnalyzeSource; empty for pre-built programs, where Diagnostics falls
	// back to "program").
	SourceName string
	// Suppress carries the source's inline fsam:ignore comments (nil when
	// the source had none, or for pre-built programs).
	Suppress *diag.Suppressions

	// Detection clients are memoized: a completed Analysis is an immutable
	// value served to many concurrent readers (the fsamd service keeps one
	// per cache entry), so Races/Deadlocks/Leaks/LeakAudit compute once
	// under a sync.Once and afterwards return the shared reports without
	// re-running the detectors. Callers must treat the returned slices as
	// read-only.
	racesOnce sync.Once
	races     []*race.Report
	racesErr  error

	deadlocksOnce sync.Once
	deadlocks     []*deadlock.Report
	deadlocksErr  error

	leaksOnce sync.Once
	leaks     []*leak.Report

	leakAuditOnce sync.Once
	leakAudit     []*leak.Report

	diagsOnce sync.Once
	diags     *checkers.Result
	diagsErr  error
}

// AnalyzeSource parses, compiles and analyzes MiniC source.
func AnalyzeSource(name, src string, cfg Config) (*Analysis, error) {
	return AnalyzeSourceCtx(context.Background(), name, src, cfg)
}

// AnalyzeSourceCtx is AnalyzeSource under a context: the compile phase
// joins the phase DAG (so compile time is measured directly, not derived
// by subtraction) and the whole run honors ctx's deadline. On
// cancellation it returns the partially-populated Analysis alongside a
// *pipeline.PhaseError wrapping ctx.Err().
func AnalyzeSourceCtx(ctx context.Context, name, src string, cfg Config) (*Analysis, error) {
	a, err := runFSAM(ctx, cfg, fsamPhases(cfg, name, src, true), pipeline.NewState())
	var pe *pipeline.PhaseError
	if errors.As(err, &pe) && pe.Phase == phaseCompile {
		return nil, pe.Err // a source error, not an analysis failure
	}
	if a != nil {
		a.SourceName = name
		a.Suppress = diag.ParseSuppressions(src)
	}
	return a, err
}

// AnalyzeProgram runs FSAM over an already-built program. It never
// panics: a phase failure degrades the result down the ladder, with the
// tier in Analysis.Precision and the reason in Stats.Degraded.
func AnalyzeProgram(prog *ir.Program, cfg Config) *Analysis {
	a, _ := AnalyzeProgramCtx(context.Background(), prog, cfg)
	return a
}

// AnalyzeProgramCtx runs FSAM over an already-built program under a
// context. The pass manager schedules the phases (overlapping the
// interleaving and lock analyses unless cfg.Sequential) and every
// fixpoint loop polls ctx, so an expired deadline surfaces promptly as a
// *pipeline.PhaseError; the returned Analysis then holds the phases that
// did complete, with their times and bytes in Stats.
func AnalyzeProgramCtx(ctx context.Context, prog *ir.Program, cfg Config) (*Analysis, error) {
	st := pipeline.NewState()
	st.Put(slotProg, prog)
	return runFSAM(ctx, cfg, fsamPhases(cfg, "", "", false), st)
}

// runFSAM schedules the phase DAG, assembles the facade view from the
// final State and the manager's Report, and — when a post-pre-analysis
// phase fails by panic, deadline, or budget — walks the degradation
// ladder (sparse FS → thread-oblivious FS → Andersen-only) so the caller
// always receives the best completed tier, explicitly labeled.
func runFSAM(ctx context.Context, cfg Config, phases []pipeline.Phase, st *pipeline.State) (*Analysis, error) {
	ctx = engine.WithBudget(ctx, engine.Budget{MemBytes: cfg.MemBudgetBytes, MaxSteps: cfg.StepLimit})
	mgr, err := newManager(cfg, phases)
	if err != nil {
		return nil, err
	}
	rep, runErr := mgr.Run(ctx, st)
	a := assemble(st)
	a.fillStats(rep)
	if runErr == nil {
		a.Precision = PrecisionSparseFS
		return a, nil
	}
	if cfg.NoDegrade {
		return a, runErr
	}
	return a.degrade(ctx, cfg, st, runErr)
}

// assemble builds the facade view over the State's completed slots.
func assemble(st *pipeline.State) *Analysis {
	return &Analysis{
		Prog:   pipeline.Get[*ir.Program](st, slotProg),
		Base:   pipeline.Get[*pipeline.Base](st, slotBase),
		MHP:    pipeline.Get[*mhp.Result](st, slotMHP),
		PCG:    pipeline.Get[*pcg.Result](st, slotPCG),
		Locks:  pipeline.Get[*locks.Result](st, slotLocks),
		Graph:  pipeline.Get[*vfg.Graph](st, slotVFG),
		Result: pipeline.Get[*core.Result](st, slotResult),
	}
}

// degrade walks the ladder after runErr stopped the full pipeline. The
// contract: a compilable program whose pre-analysis completed always comes
// back usable — tier 2 (thread-oblivious FS) when the context is still
// alive and the cheaper rerun converges, tier 3 (Andersen-only, already
// computed) otherwise. The original failure is preserved in
// Stats.Degraded; the returned error is nil whenever a tier was reached.
func (a *Analysis) degrade(ctx context.Context, cfg Config, st *pipeline.State, runErr error) (*Analysis, error) {
	var pe *pipeline.PhaseError
	if !errors.As(runErr, &pe) {
		// Not a phase failure (malformed DAG, missing seed): a programming
		// error, not a runtime condition — report it.
		a.Precision = PrecisionNone
		return a, runErr
	}
	if a.Base == nil || pe.Phase == phaseCompile || pe.Phase == phasePre {
		// Below the ladder: nothing sound completed to fall back to.
		a.Precision = PrecisionNone
		return a, runErr
	}
	reason := degradeReason(pe)

	// Tier 2: rerun def-use + solve in thread-oblivious mode, skipping the
	// interference analyses entirely. Only worth attempting while the
	// context is alive (an expired deadline would cancel it on the first
	// poll). The failed tier's outputs are dropped first — and the heap
	// garbage-collected after a memory trip — so the rerun starts with
	// budget headroom.
	if ctx.Err() == nil {
		st.Delete(slotVFG)
		st.Delete(slotResult)
		a.Graph, a.Result = nil, nil
		if pipeline.ErrOverBudget(runErr) {
			runtime.GC()
		}
		var tier2 []pipeline.Phase
		if a.Base.Model == nil {
			tier2 = append(tier2, threadModelPhase())
		}
		tier2 = append(tier2, obliviousDefUsePhase(), sparsePhase())
		if mgr, err := newManager(cfg, tier2); err == nil {
			rep2, err2 := mgr.Run(ctx, st)
			if err2 == nil {
				a.Graph = pipeline.Get[*vfg.Graph](st, slotVFG)
				a.Result = pipeline.Get[*core.Result](st, slotResult)
				a.Stats.Times.DefUse = rep2.Time(phaseDefUse)
				a.Stats.Times.Sparse = rep2.Time(phaseSparse)
				a.Stats.Bytes += rep2.TotalBytes()
				a.fillResultStats()
				a.Precision = PrecisionThreadObliviousFS
				a.Stats.Degraded = reason
				return a, nil
			}
			reason += fmt.Sprintf("; thread-oblivious fallback: %v", err2)
		}
	}

	// Tier 3: the Andersen pre-analysis is already computed and sound;
	// queries answer from it.
	a.Precision = PrecisionAndersenOnly
	a.Stats.Degraded = reason
	return a, nil
}

// degradeReason renders a phase failure for Stats.Degraded.
func degradeReason(pe *pipeline.PhaseError) string {
	switch {
	case pe.Panic:
		return fmt.Sprintf("phase %s panicked: %v", pe.Phase, pe.Err)
	case pipeline.ErrOverBudget(pe):
		return fmt.Sprintf("phase %s over budget: %v", pe.Phase, pe.Err)
	case pipeline.ErrCancelled(pe):
		return fmt.Sprintf("phase %s out of time: %v", pe.Phase, pe.Err)
	default:
		return fmt.Sprintf("phase %s failed: %v", pe.Phase, pe.Err)
	}
}

// fillStats maps the manager's per-phase Report onto the facade Stats and
// derives the result-shape counters. Nil guards keep it usable for the
// partial Analysis returned on cancellation.
func (a *Analysis) fillStats(rep *pipeline.Report) {
	t := &a.Stats.Times
	t.Compile = rep.Time(phaseCompile)
	t.PreAnalysis = rep.Time(phasePre)
	t.ThreadModel = rep.Time(phaseModel)
	t.Interleave = rep.Time(phaseIL)
	t.LockSpans = rep.Time(phaseLocks)
	t.DefUse = rep.Time(phaseDefUse)
	t.Sparse = rep.Time(phaseSparse)
	a.Stats.Bytes = rep.TotalBytes()
	if a.Prog != nil {
		a.Stats.Stmts = a.Prog.NumStmts()
	}
	if a.Base != nil {
		a.Stats.PrePops = a.Base.Pre.Pops
		if a.Base.Model != nil {
			a.Stats.Threads = len(a.Base.Model.Threads)
		}
	}
	if a.Locks != nil {
		a.Stats.LockSpans = a.Locks.NumSpans()
	}
	if a.Graph != nil {
		a.Stats.ObliviousEdges = a.Graph.ObliviousEdges
		a.Stats.ThreadEdges = a.Graph.ThreadEdges
		a.Stats.DefUseEdges = a.Graph.ObliviousEdges + a.Graph.ThreadEdges
	}
	a.fillResultStats()
}

// fillResultStats derives the result-shape counters; re-run after the
// degradation ladder replaces Result with a fallback tier's.
func (a *Analysis) fillResultStats() {
	if a.Result == nil {
		return
	}
	a.Stats.Iterations = a.Result.Iterations
	a.Stats.SolvePops = a.Result.Iterations
	rs := a.Result.InternStats()
	if a.Base != nil {
		rs.AddFrom(a.Base.Pre.InternStats())
	}
	a.Stats.UniqueSets = rs.Unique
	a.Stats.SetRefs = rs.Refs
	a.Stats.DedupRatio = rs.DedupRatio()
}

// errNoGlobal builds the shared "no such global" error.
func errNoGlobal(name string) error {
	return fmt.Errorf("no global named %q", name)
}

// GlobalObject resolves a global variable by name.
func (a *Analysis) GlobalObject(name string) (*ir.Object, error) {
	if a.Prog == nil {
		return nil, fmt.Errorf("no program (precision %s)", a.Precision)
	}
	for _, o := range a.Prog.Objects {
		if o.Kind == ir.ObjGlobal && o.Name == name {
			return o, nil
		}
	}
	return nil, errNoGlobal(name)
}

// PointsToGlobal returns the sorted names of the objects that global name
// may point to at program exit (the exit of main, after all handled joins),
// which is the flow-sensitive "final" answer the paper's examples quote.
// On a PrecisionAndersenOnly analysis it answers from the flow-insensitive
// pre-analysis — sound, just less precise.
func (a *Analysis) PointsToGlobal(name string) ([]string, error) {
	obj, err := a.GlobalObject(name)
	if err != nil {
		return nil, err
	}
	if a.Result == nil {
		return a.andersenNames(obj)
	}
	return a.names(a.Result.ObjAtExit(a.Prog.Main, obj)), nil
}

// andersenNames answers a points-to query from the pre-analysis (the
// Andersen-only tier).
func (a *Analysis) andersenNames(obj *ir.Object) ([]string, error) {
	if a.Base == nil || a.Base.Pre == nil {
		return nil, fmt.Errorf("no points-to result (precision %s)", a.Precision)
	}
	return a.names(a.Base.Pre.PointsToObj(obj)), nil
}

// PointsToGlobalAnywhere returns the union of the global's points-to sets
// over every definition in the program (a flow-insensitive view of the
// flow-sensitive result; useful for soundness comparisons).
func (a *Analysis) PointsToGlobalAnywhere(name string) ([]string, error) {
	obj, err := a.GlobalObject(name)
	if err != nil {
		return nil, err
	}
	if a.Graph == nil || a.Result == nil {
		return a.andersenNames(obj)
	}
	acc := &pts.Set{}
	for _, n := range a.Graph.Nodes {
		if n.Obj == obj {
			acc.UnionWith(a.Result.PointsToMem(n.ID))
		}
	}
	return a.names(acc), nil
}

// names maps a points-to set to sorted object names.
func (a *Analysis) names(set *pts.Set) []string {
	var out []string
	set.ForEach(func(id uint32) {
		out = append(out, a.Prog.Objects[id].Name)
	})
	sort.Strings(out)
	return out
}

// Races runs the data-race detection client over this analysis' results.
// It requires the precise interleaving analysis (Config.NoInterleaving must
// be false). The detection runs once; repeated and concurrent calls share
// the memoized reports.
func (a *Analysis) Races() ([]*race.Report, error) {
	a.racesOnce.Do(func() {
		if a.Precision != PrecisionSparseFS {
			a.racesErr = fmt.Errorf("race detection requires a full-precision result (got %s: %s)",
				a.Precision, a.Stats.Degraded)
			return
		}
		if a.MHP == nil {
			a.racesErr = fmt.Errorf("race detection requires the interleaving analysis (disable NoInterleaving)")
			return
		}
		d := &race.Detector{
			Model:  a.Base.Model,
			MHP:    a.MHP,
			Locks:  a.Locks,
			Points: a.Result,
		}
		a.races = d.Detect()
	})
	return a.races, a.racesErr
}

// Deadlocks runs the lock-order-cycle deadlock detector over this
// analysis' results. It requires both the interleaving analysis and the
// lock analysis (NoInterleaving and NoLock must be false).
func (a *Analysis) Deadlocks() ([]*deadlock.Report, error) {
	a.deadlocksOnce.Do(func() {
		if a.Precision != PrecisionSparseFS {
			a.deadlocksErr = fmt.Errorf("deadlock detection requires a full-precision result (got %s: %s)",
				a.Precision, a.Stats.Degraded)
			return
		}
		if a.MHP == nil {
			a.deadlocksErr = fmt.Errorf("deadlock detection requires the interleaving analysis (disable NoInterleaving)")
			return
		}
		if a.Locks == nil {
			a.deadlocksErr = fmt.Errorf("deadlock detection requires the lock analysis (disable NoLock)")
			return
		}
		d := &deadlock.Detector{Model: a.Base.Model, MHP: a.MHP, Locks: a.Locks}
		a.deadlocks = d.Detect()
	})
	return a.deadlocks, a.deadlocksErr
}

// leakDetector builds the leak client over this analysis' results.
func (a *Analysis) leakDetector() *leak.Detector {
	return &leak.Detector{
		Prog:      a.Prog,
		Points:    a.Result,
		Reachable: a.Base.CG.Reachable,
	}
}

// Leaks runs the memory-leak client: heap allocations neither must-freed
// nor reachable from globals at program exit. It needs a flow-sensitive
// result; a degraded Andersen-only analysis reports nothing.
func (a *Analysis) Leaks() []*leak.Report {
	a.leaksOnce.Do(func() {
		if a.Result == nil || a.Base == nil {
			return
		}
		a.leaks = a.leakDetector().Detect()
	})
	return a.leaks
}

// LeakAudit evaluates the leak conditions for every reachable allocation
// site (diagnostics). Like Leaks, it is empty below thread-oblivious
// precision.
func (a *Analysis) LeakAudit() []*leak.Report {
	a.leakAuditOnce.Do(func() {
		if a.Result == nil || a.Base == nil {
			return
		}
		a.leakAudit = a.leakDetector().Audit()
	})
	return a.leakAudit
}

// DiagnosticsResult is the outcome of running the checker suite over one
// Analysis: finalized diagnostics (canonically sorted, with fingerprints),
// the skip reason of every requested checker that could not run at this
// precision tier, and the number of findings removed by inline
// fsam:ignore suppressions.
type DiagnosticsResult struct {
	Diags      []diag.Diagnostic
	Skipped    map[string]string
	Suppressed int
}

// checkerFacts assembles the Facts bundle the checker registry consumes
// from this analysis' completed phases.
func (a *Analysis) checkerFacts() *checkers.Facts {
	f := &checkers.Facts{
		File:          a.SourceName,
		Prog:          a.Prog,
		MHP:           a.MHP,
		Locks:         a.Locks,
		Points:        a.Result,
		FullPrecision: a.Precision == PrecisionSparseFS,
		PrecisionNote: a.Precision.String(),
	}
	if f.File == "" {
		f.File = "program"
	}
	if a.Stats.Degraded != "" {
		f.PrecisionNote += ": " + a.Stats.Degraded
	}
	if a.Base != nil {
		f.Model = a.Base.Model
		f.Pre = a.Base.Pre
		if a.Base.CG != nil {
			f.Reachable = a.Base.CG.Reachable
		}
	}
	return f
}

// Diagnostics runs the diagnostic checker suite (all registered checkers
// when ids is empty) over this analysis and returns the findings in
// canonical order. The full suite runs once per Analysis — repeated and
// concurrent calls share the memoized result, and subset requests filter
// it, so fingerprints (including occurrence suffixes) are identical
// regardless of which checkers a caller selects. Checkers whose required
// analyses are unavailable at this precision tier are reported in Skipped,
// not errors; unknown checker IDs error with checkers.ErrUnknownChecker.
func (a *Analysis) Diagnostics(ids ...string) (*DiagnosticsResult, error) {
	for _, id := range ids {
		if checkers.ByID(id) == nil {
			return nil, fmt.Errorf("%w: %q (known: %v)", checkers.ErrUnknownChecker, id, checkers.IDs())
		}
	}
	a.diagsOnce.Do(func() {
		if a.Prog == nil || a.Base == nil || a.Base.Pre == nil {
			a.diagsErr = fmt.Errorf("diagnostics require a compiled program (precision %s)", a.Precision)
			return
		}
		a.diags, a.diagsErr = checkers.Run(a.checkerFacts())
	})
	if a.diagsErr != nil {
		return nil, a.diagsErr
	}

	want := func(id string) bool { return true }
	if len(ids) > 0 {
		set := map[string]bool{}
		for _, id := range ids {
			set[id] = true
		}
		want = func(id string) bool { return set[id] }
	}
	res := &DiagnosticsResult{Skipped: map[string]string{}}
	for id, reason := range a.diags.Skipped {
		if want(id) {
			res.Skipped[id] = reason
		}
	}
	var selected []diag.Diagnostic
	for _, d := range a.diags.Diags {
		if want(d.Checker) {
			selected = append(selected, d)
		}
	}
	res.Diags, res.Suppressed = a.Suppress.Filter(selected)
	return res, nil
}

// AndersenPointsToGlobal returns the pre-analysis (flow-insensitive) result
// for a global, for precision comparisons.
func (a *Analysis) AndersenPointsToGlobal(name string) ([]string, error) {
	obj, err := a.GlobalObject(name)
	if err != nil {
		return nil, err
	}
	return a.andersenNames(obj)
}

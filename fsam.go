// Package fsam is the public API of this repository: a reproduction of
// FSAM, the sparse flow-sensitive pointer analysis for multithreaded C
// programs of Sui, Di and Xue (CGO 2016), together with the other
// registered analysis engines it is compared against — the NonSparse
// baseline (an RR-style iterative data-flow analysis), the CFG-free
// flow-sensitive analysis (arXiv:2508.01974), and the Andersen
// pre-analysis exposed as an engine of its own.
//
// Programs are written in MiniC, a C subset with Pthreads-like primitives
// (spawn/join/lock/unlock); see the examples directory for the dialect. A
// typical use:
//
//	res, err := fsam.AnalyzeSource("prog.mc", src, fsam.Config{})
//	if err != nil { ... }
//	pts, _ := res.PointsToGlobal("c")   // e.g. ["y", "z"]
//
// Config.Engine selects the analysis backend ("fsam" by default; see
// Engines for the registry). The Config ablation switches correspond to
// the paper's Figure 12 configurations (No-Interleaving, No-Value-Flow,
// No-Lock).
package fsam

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cfgfree"
	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/escape"
	"repro/internal/facts"
	"repro/internal/ir"
	"repro/internal/leak"
	"repro/internal/locks"
	"repro/internal/mhp"
	"repro/internal/nonsparse"
	"repro/internal/pcg"
	"repro/internal/pipeline"
	"repro/internal/pts"
	"repro/internal/race"
	"repro/internal/solver"
	"repro/internal/tmod"
	"repro/internal/vfg"
)

// Config selects the analysis engine, its variants, and resource budgets.
// It is an alias of the solver package's Config, which is where the
// engine registry keys off it; Normalize and Canonical are documented
// there.
type Config = solver.Config

// Precision labels the tier of the result an Analysis carries, in
// ascending precision (see the solver package for the tier semantics).
type Precision = solver.Precision

// The precision tiers, re-exported for the public API.
const (
	PrecisionNone              = solver.PrecisionNone
	PrecisionAndersenOnly      = solver.PrecisionAndersenOnly
	PrecisionCFGFreeFS         = solver.PrecisionCFGFreeFS
	PrecisionThreadModularFS   = solver.PrecisionThreadModularFS
	PrecisionThreadObliviousFS = solver.PrecisionThreadObliviousFS
	PrecisionSparseFS          = solver.PrecisionSparseFS
)

// DefaultEngine is the backend an empty Config.Engine selects.
const DefaultEngine = solver.DefaultEngine

// DefaultMemModel is the memory model an empty Config.MemModel selects
// (sequential consistency).
const DefaultMemModel = solver.DefaultMemModel

// MemModels lists the supported memory models, most to least constrained
// (sc, tso, pso). Only the thread-modular engine's interference gate
// consumes the model today; it participates in every engine's canonical
// configuration regardless.
func MemModels() []string { return solver.MemModels() }

// KnownMemModel reports whether name is a supported memory model.
func KnownMemModel(name string) bool { return solver.KnownMemModel(name) }

// EscapePruneOn is the Config.EscapePrune value an empty string selects:
// the thread-escape pruning oracle is consulted by every
// interference-bearing engine.
const EscapePruneOn = solver.EscapePruneOn

// EscapePruneOff disables the thread-escape pruning oracle — the
// differential escape hatch; results are identical either way.
const EscapePruneOff = solver.EscapePruneOff

// EscapePruneModes lists the supported Config.EscapePrune values.
func EscapePruneModes() []string { return solver.EscapePruneModes() }

// KnownEscapePrune reports whether mode is a supported EscapePrune value
// (the empty string reads as the default, EscapePruneOn).
func KnownEscapePrune(mode string) bool { return solver.KnownEscapePrune(mode) }

// ParsePrecision maps a Precision.String() rendering back onto the tier.
func ParsePrecision(s string) (Precision, bool) { return solver.ParsePrecision(s) }

// Engines lists the registered analysis backends in registry order.
func Engines() []string { return solver.Names() }

// LadderEngines lists the degradation ladder's rungs, most precise first
// (the on-ladder subset of Engines).
func LadderEngines() []string {
	var out []string
	for _, s := range solver.Ladder() {
		out = append(out, s.Name())
	}
	return out
}

// LadderTiers lists the precision tiers of the ladder's rungs, most
// precise first, aligned index-for-index with LadderEngines.
func LadderTiers() []Precision {
	var out []Precision
	for _, s := range solver.Ladder() {
		out = append(out, s.Tier())
	}
	return out
}

// KnownEngine reports whether name is a registered analysis backend.
func KnownEngine(name string) bool { return solver.Known(name) }

// PhaseTimes records wall-clock duration of each pipeline stage.
type PhaseTimes struct {
	Compile     time.Duration
	PreAnalysis time.Duration
	ThreadModel time.Duration
	Interleave  time.Duration
	LockSpans   time.Duration
	// Escape is the thread-escape/sharedness classification time.
	Escape time.Duration
	DefUse time.Duration
	Sparse time.Duration
	// CFGFree is the CFG-free engine's solve time (its analogue of the
	// Sparse slot).
	CFGFree time.Duration
	// Tmod is the thread-modular engine's interference solve time (its
	// analogue of the Sparse slot).
	Tmod time.Duration
	// Extra holds sub-phase durations the pipeline Report carries under
	// dotted names (e.g. "tmod.round1", "tmod.thread0" — the thread-modular
	// engine's per-round and per-thread solve times). Sub-phase time is
	// already contained in its parent phase, so Total does not sum Extra.
	Extra map[string]time.Duration
}

// Total sums all phases.
func (p PhaseTimes) Total() time.Duration {
	return p.Compile + p.PreAnalysis + p.ThreadModel + p.Interleave +
		p.LockSpans + p.Escape + p.DefUse + p.Sparse + p.CFGFree + p.Tmod
}

// Each visits every phase with its stable name (the pipeline phase names),
// in pipeline order. Consumers that export per-phase durations — the
// service's /metrics endpoint, structured logs — iterate here instead of
// hard-coding the field list.
func (p PhaseTimes) Each(f func(phase string, d time.Duration)) {
	f("compile", p.Compile)
	f("preanalysis", p.PreAnalysis)
	f("threadmodel", p.ThreadModel)
	f("interleave", p.Interleave)
	f("locks", p.LockSpans)
	f("escape", p.Escape)
	f("defuse", p.DefUse)
	f("sparse", p.Sparse)
	f("cfgfree", p.CFGFree)
	f("tmod", p.Tmod)
	keys := make([]string, 0, len(p.Extra))
	for k := range p.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f(k, p.Extra[k])
	}
}

// setPhase records one pipeline phase's duration by its stable name (the
// NONSPARSE solve lands in the Sparse slot so FSAM and NONSPARSE rows line
// up, as the baseline API always reported it).
func (p *PhaseTimes) setPhase(name string, d time.Duration) {
	switch name {
	case solver.PhaseCompile:
		p.Compile = d
	case solver.PhasePre:
		p.PreAnalysis = d
	case solver.PhaseModel:
		p.ThreadModel = d
	case solver.PhaseIL:
		p.Interleave = d
	case solver.PhaseLocks:
		p.LockSpans = d
	case solver.PhaseEscape:
		p.Escape = d
	case solver.PhaseDefUse:
		p.DefUse = d
	case solver.PhaseSparse, solver.PhaseNonSparse:
		p.Sparse = d
	case solver.PhaseCFGFree:
		p.CFGFree = d
	case solver.PhaseTmod:
		p.Tmod = d
	default:
		// Dotted names are sub-phase measurements riding the Report
		// (pipeline.Phase.Subphases); anything else is future-proofing.
		if strings.Contains(name, ".") {
			if p.Extra == nil {
				p.Extra = map[string]time.Duration{}
			}
			p.Extra[name] = d
		}
	}
}

// Stats summarizes an analysis run.
type Stats struct {
	Times PhaseTimes
	// Bytes is the resident footprint of the analysis' data structures
	// (points-to sets, def-use graph, interference facts). Points-to
	// storage is interned, so each distinct set is counted once.
	Bytes uint64
	// UniqueSets is the number of distinct interned points-to sets the
	// final results reference; SetRefs is the number of slots referencing
	// them. DedupRatio is the byte ratio a private-copy representation
	// would have cost over the interned one (> 1 means sharing won).
	UniqueSets int
	SetRefs    int
	DedupRatio float64
	// PrePops and SolvePops count priority-worklist pops in the
	// pre-analysis and the main engine solver.
	PrePops   int
	SolvePops int
	// Threads is the number of abstract threads (including main).
	Threads int
	// DefUseEdges counts def-use edges (ObliviousEdges + ThreadEdges).
	DefUseEdges    int
	ObliviousEdges int
	ThreadEdges    int
	LockSpans      int
	Iterations     int
	Stmts          int
	// InterferenceRounds counts the thread-modular engine's interference
	// rounds to fixpoint (0 for other engines).
	InterferenceRounds int
	// EscapeLocal, EscapeHandedOff and EscapeShared count the objects the
	// thread-escape analysis classified per sharedness class (all zero for
	// engines that never build a thread model). EscapePrunedEdges counts
	// the interference work units the oracle skipped: fsam's [THREAD-VF]
	// candidate objects, tmod's interference publications, and a degraded
	// cfgfree rung's reach admissions.
	EscapeLocal       int
	EscapeHandedOff   int
	EscapeShared      int
	EscapePrunedEdges int
	// Degraded records why the result is below the requested engine's tier
	// (empty when the requested engine completed): the failing phase and
	// its panic, deadline, or budget reason, plus any fallback rung that
	// also failed.
	Degraded string
}

// Analysis is a completed analysis run. Engine names the backend that
// produced the result — after degradation, the ladder rung that landed —
// and Precision its tier. Below the requested tier, engine-specific fields
// (Result, NS, CFGFree) belong to whichever rung completed; queries always
// answer from the landed engine's view, falling back to the pre-analysis.
type Analysis struct {
	Prog      *ir.Program
	Base      *pipeline.Base
	MHP       *mhp.Result       // nil unless an fsam-engine run with interleaving
	PCG       *pcg.Result       // non-nil under NoInterleaving
	Locks     *locks.Result     // nil under NoLock
	Graph     *vfg.Graph        // def-use graph (sparse engines)
	Result    *core.Result      // sparse flow-sensitive result
	NS        *nonsparse.Result // NONSPARSE engine result
	CFGFree   *cfgfree.Result   // CFG-free engine result
	Tmod      *tmod.Result      // thread-modular engine result
	Escape    *escape.Result    // thread-escape classification (nil without a thread model)
	Engine    string
	Precision Precision
	Stats     Stats

	// Config is the normalized configuration the run used. AnalyzeDeltaCtx
	// reuses it for re-analysis, and it salts the per-function fact keys so
	// facts computed under one engine or ablation are never adopted by
	// another.
	Config Config

	// FactsStore is the per-function fact store delta runs consult (nil
	// selects the package-level DefaultFacts). A derived Analysis inherits
	// the base's store, so editor-loop chains keep one counter history.
	FactsStore *facts.Store

	// view is the landed engine's uniform points-to query surface.
	view solver.PTSView

	// source is the analyzed MiniC text, retained by AnalyzeSource so
	// delta runs can key the base's functions; snap memoizes the
	// per-function snapshot derived from it.
	source   string
	snapOnce sync.Once
	snap     *facts.Snapshot
	snapErr  error

	// SourceName is the file name diagnostics are attributed to (set by
	// AnalyzeSource; empty for pre-built programs, where Diagnostics falls
	// back to "program").
	SourceName string
	// Suppress carries the source's inline fsam:ignore comments (nil when
	// the source had none, or for pre-built programs).
	Suppress *diag.Suppressions

	// Detection clients are memoized: a completed Analysis is an immutable
	// value served to many concurrent readers (the fsamd service keeps one
	// per cache entry), so Races/Deadlocks/Leaks/LeakAudit compute once
	// under a sync.Once and afterwards return the shared reports without
	// re-running the detectors. Callers must treat the returned slices as
	// read-only.
	racesOnce sync.Once
	races     []*race.Report
	racesErr  error

	deadlocksOnce sync.Once
	deadlocks     []*deadlock.Report
	deadlocksErr  error

	leaksOnce sync.Once
	leaks     []*leak.Report

	leakAuditOnce sync.Once
	leakAudit     []*leak.Report

	diagsOnce sync.Once
	diags     *checkers.Result
	diagsErr  error

	// escOnce memoizes escapeResult: the slot value when the engine's DAG
	// computed one, else a lazy classification for engines (oblivious,
	// nonsparse) that have a thread model but no escape phase.
	escOnce sync.Once
	escLazy *escape.Result
}

// AnalyzeSource parses, compiles and analyzes MiniC source.
func AnalyzeSource(name, src string, cfg Config) (*Analysis, error) {
	return AnalyzeSourceCtx(context.Background(), name, src, cfg)
}

// AnalyzeSourceCtx is AnalyzeSource under a context: the compile phase
// joins the phase DAG (so compile time is measured directly, not derived
// by subtraction) and the whole run honors ctx's deadline. On
// cancellation it returns the partially-populated Analysis alongside a
// *pipeline.PhaseError wrapping ctx.Err().
func AnalyzeSourceCtx(ctx context.Context, name, src string, cfg Config) (*Analysis, error) {
	a, err := runEngine(ctx, cfg, name, src, true, pipeline.NewState())
	var pe *pipeline.PhaseError
	if errors.As(err, &pe) && pe.Phase == solver.PhaseCompile {
		return nil, pe.Err // a source error, not an analysis failure
	}
	if a != nil {
		a.SourceName = name
		a.Suppress = diag.ParseSuppressions(src)
		a.source = src
	}
	return a, err
}

// AnalyzeProgram runs the configured engine over an already-built program.
// It never panics: a phase failure degrades the result down the ladder,
// with the tier in Analysis.Precision and the reason in Stats.Degraded.
func AnalyzeProgram(prog *ir.Program, cfg Config) *Analysis {
	a, _ := AnalyzeProgramCtx(context.Background(), prog, cfg)
	return a
}

// AnalyzeProgramCtx runs the configured engine over an already-built
// program under a context. The pass manager schedules the engine's phase
// DAG (overlapping independent phases unless cfg.Sequential) and every
// fixpoint loop polls ctx, so an expired deadline surfaces promptly as a
// *pipeline.PhaseError; the returned Analysis then holds the phases that
// did complete, with their times and bytes in Stats.
func AnalyzeProgramCtx(ctx context.Context, prog *ir.Program, cfg Config) (*Analysis, error) {
	st := pipeline.NewState()
	st.Put(solver.SlotProg, prog)
	return runEngine(ctx, cfg, "", "", false, st)
}

// runEngine resolves cfg.Engine against the registry, schedules the
// engine's phase DAG, assembles the facade view from the final State and
// the manager's Report, and — when a post-pre-analysis phase fails by
// panic, deadline, or budget — walks the registry's degradation ladder
// (sparse FS → thread-oblivious FS → cfgfree → Andersen-only) so the
// caller always receives the best completed tier, explicitly labeled.
func runEngine(ctx context.Context, cfg Config, name, src string, withCompile bool, st *pipeline.State) (*Analysis, error) {
	cfg = cfg.Normalize()
	eng := solver.Lookup(cfg.Engine)
	if eng == nil {
		return nil, fmt.Errorf("unknown engine %q (known: %v)", cfg.Engine, solver.Names())
	}
	if !solver.KnownMemModel(cfg.MemModel) {
		return nil, fmt.Errorf("unknown memory model %q (known: %v)", cfg.MemModel, solver.MemModels())
	}
	if !solver.KnownEscapePrune(cfg.EscapePrune) {
		return nil, fmt.Errorf("unknown escape-prune mode %q (known: %v)", cfg.EscapePrune, solver.EscapePruneModes())
	}
	ctx = engine.WithBudget(ctx, engine.Budget{MemBytes: cfg.MemBudgetBytes, MaxSteps: cfg.StepLimit})
	phases := eng.Phases(cfg)
	if withCompile {
		phases = append([]pipeline.Phase{solver.CompilePhase(name, src)}, phases...)
	}
	mgr, err := newManager(cfg, eng.Name(), phases)
	if err != nil {
		return nil, err
	}
	rep, runErr := mgr.Run(ctx, st)
	a := assemble(st)
	a.Engine = eng.Name()
	a.Config = cfg
	a.fillStats(rep)
	if runErr == nil {
		a.Precision = eng.Tier()
		a.view = eng.Result(st)
		return a, nil
	}
	if cfg.NoDegrade {
		return a, runErr
	}
	return a.degrade(ctx, cfg, eng, st, runErr)
}

// assemble builds the facade view over the State's completed slots.
func assemble(st *pipeline.State) *Analysis {
	return &Analysis{
		Prog:    pipeline.Get[*ir.Program](st, solver.SlotProg),
		Base:    pipeline.Get[*pipeline.Base](st, solver.SlotBase),
		MHP:     pipeline.Get[*mhp.Result](st, solver.SlotMHP),
		PCG:     pipeline.Get[*pcg.Result](st, solver.SlotPCG),
		Locks:   pipeline.Get[*locks.Result](st, solver.SlotLocks),
		Graph:   pipeline.Get[*vfg.Graph](st, solver.SlotVFG),
		Result:  pipeline.Get[*core.Result](st, solver.SlotResult),
		NS:      pipeline.Get[*nonsparse.Result](st, solver.SlotNSResult),
		CFGFree: pipeline.Get[*cfgfree.Result](st, solver.SlotCFGFree),
		Tmod:    pipeline.Get[*tmod.Result](st, solver.SlotTmod),
		Escape:  pipeline.Get[*escape.Result](st, solver.SlotEscape),
	}
}

// degrade walks the registry ladder after runErr stopped the requested
// engine's pipeline. The contract: a compilable program whose pre-analysis
// completed always comes back usable — each rung strictly below the failed
// engine's tier is attempted in descending precision order (skipping
// phase-running rungs once the context is dead), and the Andersen rung
// always lands because its only phase, the pre-analysis, has already
// completed. The original failure is preserved in Stats.Degraded; the
// returned error is nil whenever a rung was reached.
func (a *Analysis) degrade(ctx context.Context, cfg Config, failed solver.Solver, st *pipeline.State, runErr error) (*Analysis, error) {
	var pe *pipeline.PhaseError
	if !errors.As(runErr, &pe) {
		// Not a phase failure (malformed DAG, missing seed): a programming
		// error, not a runtime condition — report it.
		a.Precision = PrecisionNone
		return a, runErr
	}
	if a.Base == nil || pe.Phase == solver.PhaseCompile || pe.Phase == solver.PhasePre {
		// Below the ladder: nothing sound completed to fall back to.
		a.Precision = PrecisionNone
		return a, runErr
	}
	reason := degradeReason(pe)
	lastErr := runErr

	for _, rung := range solver.Ladder() {
		if rung.Tier() >= failed.Tier() {
			continue
		}
		phases := prunePhases(rung.Phases(cfg), st)
		if len(phases) == 0 {
			// Everything this rung needs already completed (the Andersen
			// rung: its pre-analysis ran before anything could fail).
			if v := rung.Result(st); v != nil {
				a.adoptRung(rung, v, st, nil)
				a.Stats.Degraded = reason
				return a, nil
			}
			continue
		}
		// Rungs that must run phases are only worth attempting while the
		// context is alive (an expired deadline would cancel them on the
		// first poll).
		if ctx.Err() != nil {
			continue
		}
		// Drop the failed tier's outputs first — and garbage-collect after
		// a memory trip — so the rerun starts with budget headroom. Then
		// re-prune: a stale result slot (a def-use graph the failed sparse
		// solve left behind) must be rebuilt, not reused.
		a.clearResults(st)
		phases = prunePhases(rung.Phases(cfg), st)
		if pipeline.ErrOverBudget(lastErr) {
			runtime.GC()
		}
		mgr, err := newManager(cfg, rung.Name(), phases)
		if err != nil {
			reason += fmt.Sprintf("; %s fallback: %v", rung.Name(), err)
			continue
		}
		rep2, err2 := mgr.Run(ctx, st)
		if err2 == nil {
			a.adoptRung(rung, rung.Result(st), st, rep2)
			a.Stats.Degraded = reason
			return a, nil
		}
		lastErr = err2
		reason += fmt.Sprintf("; %s fallback: %v", rung.Name(), err2)
	}

	// Unreachable while the Andersen rung is registered (its zero-phase
	// branch above always lands once Base exists); kept as a safety net.
	a.Precision = PrecisionNone
	a.Stats.Degraded = reason
	return a, runErr
}

// clearResults drops every engine-result slot from the State and the
// facade so a fallback rung neither sees a failed tier's partial outputs
// nor competes with them for a memory budget.
func (a *Analysis) clearResults(st *pipeline.State) {
	for _, slot := range solver.ResultSlots {
		st.Delete(slot)
	}
	a.Graph, a.Result, a.NS, a.CFGFree, a.Tmod, a.view = nil, nil, nil, nil, nil, nil
}

// adoptRung rebinds the facade to a ladder rung's completed result: the
// engine label, tier, view, the rung's slots, and (when the rung ran
// phases) its report merged into Stats.
func (a *Analysis) adoptRung(rung solver.Solver, v solver.PTSView, st *pipeline.State, rep *pipeline.Report) {
	a.Graph = pipeline.Get[*vfg.Graph](st, solver.SlotVFG)
	a.Result = pipeline.Get[*core.Result](st, solver.SlotResult)
	a.NS = pipeline.Get[*nonsparse.Result](st, solver.SlotNSResult)
	a.CFGFree = pipeline.Get[*cfgfree.Result](st, solver.SlotCFGFree)
	a.Tmod = pipeline.Get[*tmod.Result](st, solver.SlotTmod)
	a.Escape = pipeline.Get[*escape.Result](st, solver.SlotEscape)
	a.Engine = rung.Name()
	a.Precision = rung.Tier()
	a.view = v
	if rep != nil {
		for _, name := range rep.Order() {
			a.Stats.Times.setPhase(name, rep.Time(name))
		}
		a.Stats.Bytes += rep.TotalBytes()
	}
	if a.Graph != nil {
		a.Stats.ObliviousEdges = a.Graph.ObliviousEdges
		a.Stats.ThreadEdges = a.Graph.ThreadEdges
		a.Stats.DefUseEdges = a.Graph.ObliviousEdges + a.Graph.ThreadEdges
	}
	a.fillResultStats()
}

// degradeReason renders a phase failure for Stats.Degraded.
func degradeReason(pe *pipeline.PhaseError) string {
	switch {
	case pe.Panic:
		return fmt.Sprintf("phase %s panicked: %v", pe.Phase, pe.Err)
	case pipeline.ErrOverBudget(pe):
		return fmt.Sprintf("phase %s over budget: %v", pe.Phase, pe.Err)
	case pipeline.ErrCancelled(pe):
		return fmt.Sprintf("phase %s out of time: %v", pe.Phase, pe.Err)
	default:
		return fmt.Sprintf("phase %s failed: %v", pe.Phase, pe.Err)
	}
}

// fillStats maps the manager's per-phase Report onto the facade Stats and
// derives the result-shape counters. Nil guards keep it usable for the
// partial Analysis returned on cancellation.
func (a *Analysis) fillStats(rep *pipeline.Report) {
	for _, name := range rep.Order() {
		a.Stats.Times.setPhase(name, rep.Time(name))
	}
	a.Stats.Bytes = rep.TotalBytes()
	if a.Prog != nil {
		a.Stats.Stmts = a.Prog.NumStmts()
	}
	if a.Base != nil {
		a.Stats.PrePops = a.Base.Pre.Pops
		if a.Base.Model != nil {
			a.Stats.Threads = len(a.Base.Model.Threads)
		}
	}
	if a.Locks != nil {
		a.Stats.LockSpans = a.Locks.NumSpans()
	}
	if a.Graph != nil {
		a.Stats.ObliviousEdges = a.Graph.ObliviousEdges
		a.Stats.ThreadEdges = a.Graph.ThreadEdges
		a.Stats.DefUseEdges = a.Graph.ObliviousEdges + a.Graph.ThreadEdges
	}
	a.fillResultStats()
}

// fillEscapeStats derives the escape classification counters and the
// pruned-work tally from whichever prune sites ran.
func (a *Analysis) fillEscapeStats() {
	if a.Escape != nil {
		a.Stats.EscapeLocal = a.Escape.NumLocal
		a.Stats.EscapeHandedOff = a.Escape.NumHandedOff
		a.Stats.EscapeShared = a.Escape.NumShared
	}
	pruned := 0
	if a.Graph != nil {
		pruned += a.Graph.FilteredByEscape
	}
	if a.Tmod != nil {
		pruned += a.Tmod.PrunedPubs
	}
	if a.CFGFree != nil {
		pruned += a.CFGFree.PrunedPairs
	}
	a.Stats.EscapePrunedEdges = pruned
}

// fillResultStats derives the result-shape counters from whichever
// engine's result is present; re-run after the degradation ladder replaces
// the result with a fallback rung's.
func (a *Analysis) fillResultStats() {
	a.fillEscapeStats()
	var rs *engine.RefStats
	switch {
	case a.Tmod != nil:
		a.Stats.Iterations = a.Tmod.Iterations
		a.Stats.SolvePops = a.Tmod.Iterations
		a.Stats.InterferenceRounds = a.Tmod.Rounds
		rs = a.Tmod.InternStats()
	case a.Result != nil:
		a.Stats.Iterations = a.Result.Iterations
		a.Stats.SolvePops = a.Result.Iterations
		rs = a.Result.InternStats()
	case a.NS != nil:
		a.Stats.Iterations = a.NS.Iterations
		a.Stats.SolvePops = a.NS.Iterations
		rs = a.NS.InternStats()
	case a.CFGFree != nil:
		a.Stats.Iterations = a.CFGFree.Iterations
		a.Stats.SolvePops = int(a.CFGFree.Pops)
		rs = a.CFGFree.InternStats()
	default:
		return
	}
	if a.Base != nil {
		rs.AddFrom(a.Base.Pre.InternStats())
	}
	a.Stats.UniqueSets = rs.Unique
	a.Stats.SetRefs = rs.Refs
	a.Stats.DedupRatio = rs.DedupRatio()
}

// errNoGlobal builds the shared "no such global" error.
func errNoGlobal(name string) error {
	return fmt.Errorf("no global named %q", name)
}

// GlobalObject resolves a global variable by name.
func (a *Analysis) GlobalObject(name string) (*ir.Object, error) {
	if a.Prog == nil {
		return nil, fmt.Errorf("no program (precision %s)", a.Precision)
	}
	for _, o := range a.Prog.Objects {
		if o.Kind == ir.ObjGlobal && o.Name == name {
			return o, nil
		}
	}
	return nil, errNoGlobal(name)
}

// PointsToGlobal returns the sorted names of the objects that global name
// may point to at program exit (the exit of main, after all handled joins),
// which is the flow-sensitive "final" answer the paper's examples quote.
// The query answers from the landed engine's view; engines without
// per-point memory states (cfgfree, Andersen-only) answer with their
// flow-insensitive object summary — sound, just less precise.
func (a *Analysis) PointsToGlobal(name string) ([]string, error) {
	obj, err := a.GlobalObject(name)
	if err != nil {
		return nil, err
	}
	if a.view != nil {
		return a.names(a.view.GlobalExit(a.Prog.Main, obj)), nil
	}
	if a.Result != nil {
		return a.names(a.Result.ObjAtExit(a.Prog.Main, obj)), nil
	}
	return a.andersenNames(obj)
}

// andersenNames answers a points-to query from the pre-analysis (the
// Andersen-only tier).
func (a *Analysis) andersenNames(obj *ir.Object) ([]string, error) {
	if a.Base == nil || a.Base.Pre == nil {
		return nil, fmt.Errorf("no points-to result (precision %s)", a.Precision)
	}
	return a.names(a.Base.Pre.PointsToObj(obj)), nil
}

// PointsToGlobalAnywhere returns the union of the global's points-to sets
// over every definition in the program (a flow-insensitive view of the
// flow-sensitive result; useful for soundness comparisons).
func (a *Analysis) PointsToGlobalAnywhere(name string) ([]string, error) {
	obj, err := a.GlobalObject(name)
	if err != nil {
		return nil, err
	}
	if a.Graph != nil && a.Result != nil {
		acc := &pts.Set{}
		for _, n := range a.Graph.Nodes {
			if n.Obj == obj {
				acc.UnionWith(a.Result.PointsToMem(n.ID))
			}
		}
		return a.names(acc), nil
	}
	if a.Graph != nil && a.Tmod != nil {
		acc := &pts.Set{}
		for _, n := range a.Graph.Nodes {
			if n.Obj == obj {
				acc.UnionWith(a.Tmod.PointsToMem(n.ID))
			}
		}
		return a.names(acc), nil
	}
	if a.CFGFree != nil {
		// The cfgfree object summary is exactly "everything any admitted
		// store may have put here" — the anywhere answer.
		return a.names(a.CFGFree.PointsToObj(obj)), nil
	}
	return a.andersenNames(obj)
}

// names maps a points-to set to sorted object names.
func (a *Analysis) names(set *pts.Set) []string {
	var out []string
	set.ForEach(func(id uint32) {
		out = append(out, a.Prog.Objects[id].Name)
	})
	sort.Strings(out)
	return out
}

// AliasPairs counts the may-aliasing pairs among the distinct address
// variables of the program's loads and stores, answered from the landed
// engine's view (falling back to the pre-analysis). It is the
// engine-comparison precision metric the bench harness reports: more
// precise engines admit fewer alias pairs, and the soundness ordering
// sparse ≤ cfgfree ≤ Andersen shows up directly in the counts.
func (a *Analysis) AliasPairs() int {
	if a.Prog == nil {
		return 0
	}
	get := a.varPTSFunc()
	if get == nil {
		return 0
	}
	seen := map[*ir.Var]bool{}
	var addrs []*ir.Var
	add := func(v *ir.Var) {
		if v != nil && !seen[v] {
			seen[v] = true
			addrs = append(addrs, v)
		}
	}
	for _, f := range a.Prog.Funcs {
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				switch s := s.(type) {
				case *ir.Load:
					add(s.Addr)
				case *ir.Store:
					add(s.Addr)
				}
			}
		}
	}
	sets := make([]*pts.Set, len(addrs))
	for i, v := range addrs {
		sets[i] = get(v)
	}
	pairs := 0
	for i := range sets {
		for j := i + 1; j < len(sets); j++ {
			if sets[i].IntersectsWith(sets[j]) {
				pairs++
			}
		}
	}
	return pairs
}

// PointsToVar returns the landed engine's points-to set for a top-level
// variable (nil when no result at all is available). Every engine is
// sound, so the set covers anything a concrete execution may observe in
// the variable; coarser engines just return bigger sets.
func (a *Analysis) PointsToVar(v *ir.Var) *pts.Set {
	get := a.varPTSFunc()
	if get == nil {
		return nil
	}
	return get(v)
}

// varPTSFunc returns the landed engine's per-variable points-to accessor
// (nil when no result at all is available).
func (a *Analysis) varPTSFunc() func(*ir.Var) *pts.Set {
	if a.view != nil {
		return a.view.VarPTS
	}
	if a.Result != nil {
		return a.Result.PointsToVar
	}
	if a.Base != nil && a.Base.Pre != nil {
		return a.Base.Pre.PointsToVar
	}
	return nil
}

// Races runs the data-race detection client over this analysis' results.
// It requires the precise interleaving analysis (Config.NoInterleaving must
// be false). The detection runs once; repeated and concurrent calls share
// the memoized reports.
func (a *Analysis) Races() ([]*race.Report, error) {
	a.racesOnce.Do(func() {
		if a.Precision != PrecisionSparseFS || a.Result == nil {
			a.racesErr = fmt.Errorf("race detection requires a full-precision result (got %s: %s)",
				a.Precision, a.Stats.Degraded)
			return
		}
		if a.MHP == nil {
			a.racesErr = fmt.Errorf("race detection requires the interleaving analysis (disable NoInterleaving)")
			return
		}
		d := &race.Detector{
			Model:  a.Base.Model,
			MHP:    a.MHP,
			Locks:  a.Locks,
			Points: a.Result,
		}
		if a.Config.EscapePrune != solver.EscapePruneOff {
			d.Escape = a.escapeResult()
		}
		a.races = d.Detect()
	})
	return a.races, a.racesErr
}

// Deadlocks runs the lock-order-cycle deadlock detector over this
// analysis' results. It requires both the interleaving analysis and the
// lock analysis (NoInterleaving and NoLock must be false).
func (a *Analysis) Deadlocks() ([]*deadlock.Report, error) {
	a.deadlocksOnce.Do(func() {
		if a.Precision != PrecisionSparseFS || a.Result == nil {
			a.deadlocksErr = fmt.Errorf("deadlock detection requires a full-precision result (got %s: %s)",
				a.Precision, a.Stats.Degraded)
			return
		}
		if a.MHP == nil {
			a.deadlocksErr = fmt.Errorf("deadlock detection requires the interleaving analysis (disable NoInterleaving)")
			return
		}
		if a.Locks == nil {
			a.deadlocksErr = fmt.Errorf("deadlock detection requires the lock analysis (disable NoLock)")
			return
		}
		d := &deadlock.Detector{Model: a.Base.Model, MHP: a.MHP, Locks: a.Locks}
		a.deadlocks = d.Detect()
	})
	return a.deadlocks, a.deadlocksErr
}

// leakDetector builds the leak client over this analysis' results.
func (a *Analysis) leakDetector() *leak.Detector {
	return &leak.Detector{
		Prog:      a.Prog,
		Points:    a.Result,
		Reachable: a.Base.CG.Reachable,
	}
}

// Leaks runs the memory-leak client: heap allocations neither must-freed
// nor reachable from globals at program exit. It needs a sparse
// flow-sensitive result; other engines and degraded Andersen-only
// analyses report nothing.
func (a *Analysis) Leaks() []*leak.Report {
	a.leaksOnce.Do(func() {
		if a.Result == nil || a.Base == nil {
			return
		}
		a.leaks = a.leakDetector().Detect()
	})
	return a.leaks
}

// LeakAudit evaluates the leak conditions for every reachable allocation
// site (diagnostics). Like Leaks, it is empty without a sparse
// flow-sensitive result.
func (a *Analysis) LeakAudit() []*leak.Report {
	a.leakAuditOnce.Do(func() {
		if a.Result == nil || a.Base == nil {
			return
		}
		a.leakAudit = a.leakDetector().Audit()
	})
	return a.leakAudit
}

// DiagnosticsResult is the outcome of running the checker suite over one
// Analysis: finalized diagnostics (canonically sorted, with fingerprints),
// the skip reason of every requested checker that could not run at this
// precision tier, and the number of findings removed by inline
// fsam:ignore suppressions.
type DiagnosticsResult struct {
	Diags      []diag.Diagnostic
	Skipped    map[string]string
	Suppressed int
}

// EscapeResult returns the thread-escape classification for reporting
// clients (fsam -escape, the fsamd ?escape= summary): the engine DAG's
// when one was computed, else a lazy run over the thread model. Nil when
// no thread model exists at all (the andersen/cfgfree engines' DAGs).
func (a *Analysis) EscapeResult() *escape.Result { return a.escapeResult() }

// escapeResult returns the thread-escape classification: the engine DAG's
// when one was computed, else a lazy run over the thread model (nil when
// no thread model exists at all). Memoized — a completed Analysis is an
// immutable value served to concurrent readers.
func (a *Analysis) escapeResult() *escape.Result {
	a.escOnce.Do(func() {
		a.escLazy = a.Escape
		if a.escLazy == nil && a.Base != nil && a.Base.Model != nil {
			a.escLazy = escape.Analyze(a.Base.Model)
		}
	})
	return a.escLazy
}

// checkerFacts assembles the Facts bundle the checker registry consumes
// from this analysis' completed phases.
func (a *Analysis) checkerFacts() *checkers.Facts {
	f := &checkers.Facts{
		File:          a.SourceName,
		Prog:          a.Prog,
		MHP:           a.MHP,
		Locks:         a.Locks,
		Points:        a.Result,
		FullPrecision: a.Precision == PrecisionSparseFS && a.Result != nil,
		PrecisionNote: a.Precision.String(),
		MemModel:      a.Config.MemModel,
	}
	if f.File == "" {
		f.File = "program"
	}
	if a.Stats.Degraded != "" {
		f.PrecisionNote += ": " + a.Stats.Degraded
	}
	if a.Base != nil {
		f.Model = a.Base.Model
		f.Pre = a.Base.Pre
		if a.Base.CG != nil {
			f.Reachable = a.Base.CG.Reachable
		}
	}
	f.Escape = a.escapeResult()
	return f
}

// Diagnostics runs the diagnostic checker suite (all registered checkers
// when ids is empty) over this analysis and returns the findings in
// canonical order. The full suite runs once per Analysis — repeated and
// concurrent calls share the memoized result, and subset requests filter
// it, so fingerprints (including occurrence suffixes) are identical
// regardless of which checkers a caller selects. Checkers whose required
// analyses are unavailable at this precision tier are reported in Skipped,
// not errors; unknown checker IDs error with checkers.ErrUnknownChecker.
func (a *Analysis) Diagnostics(ids ...string) (*DiagnosticsResult, error) {
	for _, id := range ids {
		if checkers.ByID(id) == nil {
			return nil, fmt.Errorf("%w: %q (known: %v)", checkers.ErrUnknownChecker, id, checkers.IDs())
		}
	}
	a.diagsOnce.Do(func() {
		if a.Prog == nil || a.Base == nil || a.Base.Pre == nil {
			a.diagsErr = fmt.Errorf("diagnostics require a compiled program (precision %s)", a.Precision)
			return
		}
		a.diags, a.diagsErr = checkers.Run(a.checkerFacts())
	})
	if a.diagsErr != nil {
		return nil, a.diagsErr
	}

	want := func(id string) bool { return true }
	if len(ids) > 0 {
		set := map[string]bool{}
		for _, id := range ids {
			set[id] = true
		}
		want = func(id string) bool { return set[id] }
	}
	res := &DiagnosticsResult{Skipped: map[string]string{}}
	for id, reason := range a.diags.Skipped {
		if want(id) {
			res.Skipped[id] = reason
		}
	}
	var selected []diag.Diagnostic
	for _, d := range a.diags.Diags {
		if want(d.Checker) {
			selected = append(selected, d)
		}
	}
	res.Diags, res.Suppressed = a.Suppress.Filter(selected)
	return res, nil
}

// AndersenPointsToGlobal returns the pre-analysis (flow-insensitive) result
// for a global, for precision comparisons.
func (a *Analysis) AndersenPointsToGlobal(name string) ([]string, error) {
	obj, err := a.GlobalObject(name)
	if err != nil {
		return nil, err
	}
	return a.andersenNames(obj)
}
